#ifndef MVIEW_SERVER_SERVER_H_
#define MVIEW_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mview::sql {
class EngineCore;
}  // namespace mview::sql

namespace mview::util {
class Cancellation;
}  // namespace mview::util

namespace mview::server {

/// A line-oriented TCP frontend over one `EngineCore`.
///
/// Each accepted connection gets its own `sql::Session` (so BEGIN…COMMIT
/// state is per-connection) and its own handler thread; concurrency between
/// connections is exactly the engine's session model — view SELECTs are
/// served lock-free from the published epoch, everything else takes the
/// engine lock its statement class requires.
///
/// Protocol: see server/wire.h.  One SQL statement per request line, one
/// single-line JSON response per request.  A `@<millis> ` request prefix
/// sets a statement deadline; with `Options::auth_token` set, connections
/// must `HELLO <token>` before anything but QUIT.
///
/// Shutdown is a graceful drain: `RequestShutdown` (or a SIGINT/SIGTERM
/// after `InstallShutdownSignalHandlers`) stops the accept loop, lets every
/// connection finish the statement it is executing — including writing its
/// response — and then closes.  `Wait` joins everything, but the drain is
/// *bounded*: after `drain_timeout_ms` it cancels in-flight statements via
/// their cancellation tokens and forces the sockets shut, so a hung or
/// stalled client can no longer wedge shutdown.
class Server {
 public:
  struct Options {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
    /// from `port()` after `Start`).
    uint16_t port = 0;
    int backlog = 64;
    /// Shared secret; empty disables auth.  With a token set,
    /// unauthenticated connections may only HELLO and QUIT — everything
    /// else is rejected with kind "unauthenticated" (constant-time
    /// compare, so the rejection leaks nothing about the token).
    std::string auth_token;
    /// Maximum request-line size; a longer frame gets one error response
    /// (best-effort) and the connection is closed — the server survives.
    size_t max_request_bytes = 1 << 20;
    /// Close connections idle longer than this (0 = never).
    int64_t idle_timeout_ms = 0;
    /// A response write that makes no progress for this long marks the
    /// client stalled and kills the connection (0 = wait forever).
    int64_t write_timeout_ms = 10'000;
    /// Bound on the graceful drain: connections still alive after this are
    /// cancelled and force-closed (0 = wait forever, the old behavior).
    int64_t drain_timeout_ms = 5'000;
  };

  /// `core` is not owned and must outlive the server.
  Server(sql::EngineCore* core, Options options);

  /// Drains and joins (equivalent to `Shutdown`) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.  Throws `IoError` when
  /// the socket cannot be set up.
  void Start();

  /// The bound port (valid after `Start`).
  uint16_t port() const { return port_; }

  /// Signals the drain from any thread — or a signal handler: the
  /// implementation is one `write` to a pipe, which is async-signal-safe.
  /// Does not wait; pair with `Wait`.
  void RequestShutdown();

  /// Blocks until the accept loop and every connection handler exit.
  void Wait();

  /// `RequestShutdown` + `Wait`.  Idempotent.
  void Shutdown();

  /// The pipe fd a signal handler may write one byte to in order to
  /// trigger the drain (valid after `Start`).
  int shutdown_fd() const { return stop_pipe_[1]; }

 private:
  /// Per-connection registry entry: the fd plus a pointer to the statement
  /// token currently executing on it (null between statements).  The
  /// bounded drain walks these to cancel and force-close stragglers.
  struct ConnState {
    int fd = -1;
    bool authed = false;  // handler-thread only; HELLO flips it
    std::mutex mu;
    util::Cancellation* active = nullptr;  // guarded by mu
  };

  void AcceptLoop();
  void Serve(int fd, std::shared_ptr<ConnState> state);
  void RemoveConn(const ConnState* state);

  sql::EngineCore* core_;  // not owned
  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // [0]=read (polled), [1]=write (signal)
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool joined_ = false;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::vector<std::shared_ptr<ConnState>> conn_states_;  // guarded by conn_mu_
  std::condition_variable conn_cv_;  // signaled when a conn unregisters
};

/// Installs SIGINT and SIGTERM handlers that request this server's
/// drain (async-signal-safe: the handler writes one byte to the server's
/// stop pipe).  Call after `Start`; the server must outlive the handlers'
/// last possible firing.  One server per process — installing for a second
/// server redirects the signals to it.
void InstallShutdownSignalHandlers(Server& server);

}  // namespace mview::server

#endif  // MVIEW_SERVER_SERVER_H_
