// mview_server: the line-oriented TCP frontend as a standalone binary.
//
//   mview_server [--port=N] [--data=DIR] [--parallelism=N]
//
//  --port=N         port on 127.0.0.1 (default 7433; 0 = ephemeral)
//  --data=DIR       durable database directory (recovered on start,
//                   checkpointed on drain); omit for an in-memory engine
//  --parallelism=N  maintenance thread-pool size (default serial)
//
// Protocol: one SQL statement per line in, one JSON response line out —
// see src/server/wire.h.  SIGINT/SIGTERM drain gracefully: in-flight
// statements finish and their responses are written before sockets close.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "server/server.h"
#include "sql/engine.h"
#include "storage/storage.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7433;
  std::string data;
  size_t parallelism = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "port", &value)) {
      port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(arg, "data", &value)) {
      data = value;
    } else if (ParseFlag(arg, "parallelism", &value)) {
      parallelism = std::stoul(value);
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: mview_server [--port=N] [--data=DIR]"
                   " [--parallelism=N]\n";
      return 2;
    }
  }

  try {
    std::unique_ptr<mview::Storage> storage;
    if (!data.empty()) storage = mview::Storage::Open(data);
    mview::sql::EngineCore core(storage.get());
    if (parallelism > 0) core.SetMaintenanceParallelism(parallelism);

    mview::server::Server::Options options;
    options.port = port;
    mview::server::Server server(&core, options);
    server.Start();
    mview::server::InstallShutdownSignalHandlers(server);
    std::cout << "mview_server listening on 127.0.0.1:" << server.port()
              << (data.empty() ? " (in-memory)" : (" (data: " + data + ")"))
              << std::endl;
    server.Wait();
    std::cout << "mview_server drained" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "mview_server: " << e.what() << std::endl;
    return 1;
  }
  return 0;
}
