// mview_server: the line-oriented TCP frontend as a standalone binary.
//
//   mview_server [--port=N] [--data=DIR] [--parallelism=N]
//                [--auth-token=SECRET] [--read-slots=N] [--write-slots=N]
//                [--max-request-bytes=N] [--idle-timeout-ms=N]
//                [--write-timeout-ms=N] [--drain-timeout-ms=N]
//
//  --port=N         port on 127.0.0.1 (default 7433; 0 = ephemeral)
//  --data=DIR       durable database directory (recovered on start,
//                   checkpointed on drain); omit for an in-memory engine
//  --parallelism=N  maintenance thread-pool size (default serial)
//  --auth-token=S   shared secret; clients must HELLO <S> first
//  --read-slots=N   admission budget for the read lane (0 = unlimited)
//  --write-slots=N  admission budget for the write lane (0 = unlimited)
//  --max-request-bytes=N  request-frame cap (default 1 MiB)
//  --idle-timeout-ms=N    close idle connections (0 = never)
//  --write-timeout-ms=N   stalled-client write timeout (default 10s)
//  --drain-timeout-ms=N   graceful-drain bound (default 5s)
//
// Protocol: one SQL statement per line in, one JSON response line out —
// see src/server/wire.h.  SIGINT/SIGTERM drain gracefully: in-flight
// statements finish and their responses are written before sockets close;
// stragglers are cancelled and cut off at the drain timeout.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "server/server.h"
#include "sql/engine.h"
#include "storage/storage.h"
#include "util/admission.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7433;
  std::string data;
  size_t parallelism = 0;
  mview::util::AdmissionController::Options admission;
  mview::server::Server::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "port", &value)) {
      port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(arg, "data", &value)) {
      data = value;
    } else if (ParseFlag(arg, "parallelism", &value)) {
      parallelism = std::stoul(value);
    } else if (ParseFlag(arg, "auth-token", &value)) {
      options.auth_token = value;
    } else if (ParseFlag(arg, "read-slots", &value)) {
      admission.read_slots = std::stol(value);
    } else if (ParseFlag(arg, "write-slots", &value)) {
      admission.write_slots = std::stol(value);
    } else if (ParseFlag(arg, "max-request-bytes", &value)) {
      options.max_request_bytes = std::stoul(value);
    } else if (ParseFlag(arg, "idle-timeout-ms", &value)) {
      options.idle_timeout_ms = std::stol(value);
    } else if (ParseFlag(arg, "write-timeout-ms", &value)) {
      options.write_timeout_ms = std::stol(value);
    } else if (ParseFlag(arg, "drain-timeout-ms", &value)) {
      options.drain_timeout_ms = std::stol(value);
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: mview_server [--port=N] [--data=DIR]"
                   " [--parallelism=N] [--auth-token=SECRET]"
                   " [--read-slots=N] [--write-slots=N]"
                   " [--max-request-bytes=N] [--idle-timeout-ms=N]"
                   " [--write-timeout-ms=N] [--drain-timeout-ms=N]\n";
      return 2;
    }
  }

  try {
    std::unique_ptr<mview::Storage> storage;
    if (!data.empty()) storage = mview::Storage::Open(data);
    mview::sql::EngineCore core(storage.get());
    if (parallelism > 0) core.SetMaintenanceParallelism(parallelism);
    if (admission.read_slots > 0 || admission.write_slots > 0) {
      core.SetAdmissionControl(admission);
    }

    options.port = port;
    mview::server::Server server(&core, options);
    server.Start();
    mview::server::InstallShutdownSignalHandlers(server);
    std::cout << "mview_server listening on 127.0.0.1:" << server.port()
              << (data.empty() ? " (in-memory)" : (" (data: " + data + ")"))
              << std::endl;
    server.Wait();
    std::cout << "mview_server drained" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "mview_server: " << e.what() << std::endl;
    return 1;
  }
  return 0;
}
