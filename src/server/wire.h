#ifndef MVIEW_SERVER_WIRE_H_
#define MVIEW_SERVER_WIRE_H_

#include <string>

#include "sql/result.h"
#include "util/status.h"

namespace mview::server {

/// The wire protocol, shared by server and client:
///
///  - Requests are line-oriented: one SQL statement per line, terminated
///    by '\n' (a trailing '\r' is tolerated).  Empty lines are ignored.
///  - A request line may carry a deadline prefix `@<millis> ` — "answer
///    within this many milliseconds or cancel and return
///    deadline_exceeded".  `EncodeRequest`/`SplitRequestDeadline` are the
///    shared encoding.
///  - Two protocol verbs are handled before SQL parsing: `HELLO <token>`
///    authenticates the connection against the server's shared secret
///    (when the server runs with one, every other request is rejected
///    with kind "unauthenticated" until HELLO succeeds), and `QUIT`
///    closes the connection after one ok response.
///  - Every request gets exactly one single-line JSON response:
///      {"ok":true,<result body>}                       on success
///      {"ok":false,"kind":"<kind>","message":"<text>"} on failure
///    where <result body> is `sql::Result::AppendJsonBody` (so a wire
///    response carries the same encoding `Result::ToJson` produces) and
///    <kind> is `StatusKindName` of the classified error.  An overload
///    shed additionally carries `,"retry_after_ms":<n>` — the server's
///    backoff hint, honored by `Client::ExecuteWithRetry`.
///
/// The response is guaranteed to be one line: every string is JSON-escaped,
/// so no raw newline ever appears inside it.

/// Encodes one response line (without the trailing '\n').  `result` may be
/// null — for an error status, or for an ok status with no payload (the
/// encoder then emits an empty message body).
std::string EncodeResponse(const Status& status, const sql::Result* result);

/// A shallowly decoded response: enough structure for clients to branch on
/// without a full JSON parser.  `raw` always holds the exact line, so
/// callers that want the rows can parse the payload themselves (or simply
/// compare bytes, as the tests do).
struct WireResponse {
  bool ok = false;
  Status::Kind kind = Status::Kind::kInternal;
  std::string message;  // decoded error text; empty on ok
  int64_t retry_after_ms = 0;  // backoff hint on kOverloaded; else 0
  std::string raw;      // the full response line, verbatim

  Status ToStatus() const {
    if (ok) return Status::Ok();
    return Status{false, kind, message, retry_after_ms};
  }
};

/// Decodes a response line produced by `EncodeResponse`.  Never throws: a
/// malformed line comes back as `kInternal` with the line quoted in
/// `message`.
WireResponse ParseResponse(const std::string& line);

/// Encodes one request line (without the trailing '\n'): the statement,
/// prefixed with `@<deadline_ms> ` when `deadline_ms` > 0.
std::string EncodeRequest(const std::string& sql, int64_t deadline_ms);

/// Splits a request line into its statement and deadline.  Returns the
/// statement body; `*deadline_ms` is the prefix value, or 0 when the line
/// has none.  A malformed prefix (`@` not followed by digits and a space)
/// is treated as statement text — SQL never starts with '@', so the parser
/// will reject it with a proper error.
std::string SplitRequestDeadline(const std::string& line,
                                 int64_t* deadline_ms);

}  // namespace mview::server

#endif  // MVIEW_SERVER_WIRE_H_
