#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/trace.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace mview::storage {
namespace {

// "002" added the record-type byte after the LSN (quarantine/repair
// records).  Older logs are not migrated: the log is rotated away at every
// checkpoint, so no deployment carries a long-lived WAL across versions.
constexpr char kMagic[8] = {'M', 'V', 'W', 'A', 'L', '0', '0', '2'};
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint64_t);
// A record larger than this cannot be legitimate; treat it as damage
// rather than attempting a multi-gigabyte allocation.
constexpr uint32_t kMaxPayload = 1u << 30;

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw IoError("wal: " + what + " failed for " + path + ": " +
                std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace wire {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  if (v.type() == ValueType::kInt64) {
    PutU8(out, 0);
    PutI64(out, v.AsInt64());
  } else {
    PutU8(out, 1);
    PutString(out, v.AsString());
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutU32(out, static_cast<uint32_t>(t.size()));
  for (size_t i = 0; i < t.size(); ++i) PutValue(out, t.at(i));
}

void Reader::Need(size_t n) const {
  if (static_cast<size_t>(end_ - p_) < n) {
    throw CorruptionError("storage decode: record truncated");
  }
}

uint8_t Reader::GetU8() {
  Need(1);
  return static_cast<uint8_t>(*p_++);
}

uint32_t Reader::GetU32() {
  Need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p_[i])) << (8 * i);
  }
  p_ += 4;
  return v;
}

uint64_t Reader::GetU64() {
  Need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p_[i])) << (8 * i);
  }
  p_ += 8;
  return v;
}

int64_t Reader::GetI64() { return static_cast<int64_t>(GetU64()); }

std::string Reader::GetString() {
  uint32_t n = GetU32();
  Need(n);
  std::string s(p_, n);
  p_ += n;
  return s;
}

Value Reader::GetValue() {
  uint8_t tag = GetU8();
  if (tag == 0) return Value(GetI64());
  if (tag == 1) return Value(GetString());
  throw CorruptionError("storage decode: unknown value tag " +
                        std::to_string(tag));
}

Tuple Reader::GetTuple() {
  uint32_t arity = GetCount();
  std::vector<Value> values;
  values.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) values.push_back(GetValue());
  return Tuple(std::move(values));
}

uint32_t Reader::GetCount() {
  uint32_t n = GetU32();
  if (n > Remaining()) {
    throw CorruptionError("storage decode: element count " +
                          std::to_string(n) + " exceeds the " +
                          std::to_string(Remaining()) + " bytes remaining");
  }
  return n;
}

}  // namespace wire

namespace {

// The payload *tail*: everything after the leading `[u64 lsn]`, which
// `Wal::AppendPayload` prepends once the LSN is assigned under the mutex.
std::string EncodeEffectTail(const TransactionEffect& effect) {
  std::string payload;
  wire::PutU8(&payload, static_cast<uint8_t>(WalRecord::Type::kEffect));
  std::vector<std::string> touched = effect.TouchedRelations();
  wire::PutU32(&payload, static_cast<uint32_t>(touched.size()));
  for (const auto& name : touched) {
    const RelationEffect* re = effect.Find(name);
    wire::PutString(&payload, name);
    // Sorted order keeps the encoding deterministic for a given effect.
    std::vector<Tuple> ins = re->inserts.ToSortedVector();
    std::vector<Tuple> del = re->deletes.ToSortedVector();
    wire::PutU32(&payload, static_cast<uint32_t>(ins.size()));
    for (const auto& t : ins) wire::PutTuple(&payload, t);
    wire::PutU32(&payload, static_cast<uint32_t>(del.size()));
    for (const auto& t : del) wire::PutTuple(&payload, t);
  }
  return payload;
}

WalRecord DecodePayload(const std::string& payload) {
  wire::Reader r(payload);
  WalRecord record;
  record.lsn = r.GetU64();
  uint8_t type = r.GetU8();
  if (type > static_cast<uint8_t>(WalRecord::Type::kRepair)) {
    throw CorruptionError("wal: unknown record type " + std::to_string(type));
  }
  record.type = static_cast<WalRecord::Type>(type);
  switch (record.type) {
    case WalRecord::Type::kEffect: {
      uint32_t n_changes = r.GetCount();
      for (uint32_t c = 0; c < n_changes; ++c) {
        WalRecord::Change change;
        change.relation = r.GetString();
        uint32_t n_ins = r.GetCount();
        change.inserts.reserve(n_ins);
        for (uint32_t i = 0; i < n_ins; ++i) {
          change.inserts.push_back(r.GetTuple());
        }
        uint32_t n_del = r.GetCount();
        change.deletes.reserve(n_del);
        for (uint32_t i = 0; i < n_del; ++i) {
          change.deletes.push_back(r.GetTuple());
        }
        record.changes.push_back(std::move(change));
      }
      break;
    }
    case WalRecord::Type::kQuarantine:
      record.view = r.GetString();
      record.reason = r.GetString();
      record.sticky = r.GetU8() != 0;
      break;
    case WalRecord::Type::kRepair:
      record.view = r.GetString();
      break;
  }
  if (!r.AtEnd()) {
    throw CorruptionError("wal: trailing bytes inside a record payload");
  }
  return record;
}

}  // namespace

size_t RegistryFailurePolicy::AdmitWrite(size_t size) {
  try {
    MVIEW_FAULT_POINT("wal.torn_write");
  } catch (const IoError&) {
    return size / 2;  // write half the batch, then the append fails torn
  }
  return size;
}

void RegistryFailurePolicy::BeforeSync() {
  MVIEW_FAULT_POINT("wal.before_sync");
}

std::string Wal::EncodeRecord(uint64_t lsn, const TransactionEffect& effect) {
  std::string payload;
  wire::PutU64(&payload, lsn);
  payload += EncodeEffectTail(effect);
  std::string record;
  wire::PutU32(&record, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&record, Crc32(payload.data(), payload.size()));
  record.append(payload);
  return record;
}

Wal::Wal(std::string path, WalOptions options, const ReplayFn& replay)
    : path_(std::move(path)), options_(options) {
  MVIEW_CHECK(options_.max_batch >= 1, "wal: max_batch must be at least 1");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) ThrowErrno("open", path_);
  try {
    ScanExisting(replay);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::ScanExisting(const ReplayFn& replay) {
  std::string contents;
  {
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) ThrowErrno("lseek", path_);
    contents.resize(static_cast<size_t>(size));
    size_t done = 0;
    while (done < contents.size()) {
      ssize_t n = ::pread(fd_, contents.data() + done, contents.size() - done,
                          static_cast<off_t>(done));
      if (n < 0) ThrowErrno("read", path_);
      if (n == 0) break;
      done += static_cast<size_t>(n);
    }
    contents.resize(done);
  }

  if (contents.empty()) {
    WriteHeader(0);
    return;
  }
  if (contents.size() < kHeaderSize ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    // A header-sized-or-shorter file with a bad header cannot hold any
    // record, so when the caller vouches for a checkpoint
    // (tolerate_torn_header) it is a torn header write — re-initialize
    // and let `Storage::Attach` rebase above the checkpoint LSN.  A file
    // long enough to carry records is damage either way.
    if (options_.tolerate_torn_header && contents.size() <= kHeaderSize) {
      stats_.truncated_bytes += static_cast<int64_t>(contents.size());
      WriteHeader(0);
      return;
    }
    throw CorruptionError("wal: bad header in " + path_);
  }
  {
    wire::Reader header(contents.data() + sizeof(kMagic), sizeof(uint64_t));
    base_lsn_ = header.GetU64();
  }
  next_lsn_ = base_lsn_ + 1;
  durable_lsn_ = base_lsn_;

  // Decode records until the end of the file or a torn tail.  A record
  // that frames correctly (length fits, CRC matches) but decodes to
  // garbage or breaks the LSN chain is *mid-log* damage — corruption, not
  // a torn write — because appends are strictly sequential.
  size_t good = kHeaderSize;
  uint64_t expect = next_lsn_;
  while (good < contents.size()) {
    size_t remaining = contents.size() - good;
    if (remaining < 8) break;  // torn frame header
    wire::Reader frame(contents.data() + good, 8);
    uint32_t len = frame.GetU32();
    uint32_t crc = frame.GetU32();
    if (len > kMaxPayload) break;         // garbage length: torn tail
    if (remaining < 8 + len) break;       // torn payload
    const char* payload = contents.data() + good + 8;
    if (Crc32(payload, len) != crc) break;  // torn or bit-rotted tail
    WalRecord record = DecodePayload(std::string(payload, len));
    if (record.lsn != expect) {
      throw CorruptionError("wal: LSN " + std::to_string(record.lsn) +
                            " where " + std::to_string(expect) +
                            " expected in " + path_);
    }
    if (replay) replay(std::move(record));
    ++expect;
    good += 8 + len;
    ++stats_.records_replayed;
  }
  next_lsn_ = expect;
  durable_lsn_ = expect - 1;
  if (good < contents.size()) {
    stats_.truncated_bytes +=
        static_cast<int64_t>(contents.size() - good);
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      ThrowErrno("ftruncate", path_);
    }
    if (options_.fsync && ::fsync(fd_) != 0) ThrowErrno("fsync", path_);
  }
  // Leave the offset at the end of the valid prefix so appends extend it
  // (the scan and a possible truncation both moved it elsewhere).
  if (::lseek(fd_, static_cast<off_t>(good), SEEK_SET) < 0) {
    ThrowErrno("lseek", path_);
  }
}

void Wal::WriteHeader(uint64_t base_lsn) {
  std::string header(kMagic, sizeof(kMagic));
  wire::PutU64(&header, base_lsn);
  if (::ftruncate(fd_, 0) != 0) ThrowErrno("ftruncate", path_);
  size_t done = 0;
  while (done < header.size()) {
    ssize_t n = ::pwrite(fd_, header.data() + done, header.size() - done,
                         static_cast<off_t>(done));
    if (n < 0) ThrowErrno("write", path_);
    done += static_cast<size_t>(n);
  }
  if (options_.fsync && ::fsync(fd_) != 0) ThrowErrno("fsync", path_);
  // pwrite does not move the file offset, but record appends in
  // WriteAndSync are offset-relative — park the offset after the header.
  if (::lseek(fd_, static_cast<off_t>(kHeaderSize), SEEK_SET) < 0) {
    ThrowErrno("lseek", path_);
  }
  base_lsn_ = base_lsn;
  next_lsn_ = base_lsn + 1;
  durable_lsn_ = base_lsn;
}

int64_t Wal::WriteAndSync(const std::string& batch) {
  // Fires before the write so an injected EIO leaves nothing of the batch
  // on disk: recovery then replays exactly the acknowledged prefix, which
  // is what the sticky-failure contract promises.  (The bytes-written-but-
  // maybe-not-durable window is exercised separately via
  // `FailurePolicy::BeforeSync` / the "wal.before_sync" point.)
  MVIEW_FAULT_POINT("wal.fsync");
  Stopwatch timer;
  size_t admit = batch.size();
  if (options_.failure_policy != nullptr) {
    admit = options_.failure_policy->AdmitWrite(batch.size());
  }
  size_t done = 0;
  while (done < admit) {
    ssize_t n = ::write(fd_, batch.data() + done, admit - done);
    if (n < 0) ThrowErrno("write", path_);
    done += static_cast<size_t>(n);
  }
  if (admit < batch.size()) {
    throw IoError("wal: injected torn write after " + std::to_string(admit) +
                  " of " + std::to_string(batch.size()) + " bytes");
  }
  if (options_.failure_policy != nullptr) options_.failure_policy->BeforeSync();
  if (options_.fsync && ::fsync(fd_) != 0) ThrowErrno("fsync", path_);
  return timer.ElapsedNanos();
}

void Wal::ThrowIfFailed() const {
  if (failed_) {
    throw IoError("wal: log has failed and needs recovery: " +
                  failure_message_);
  }
}

uint64_t Wal::Append(const TransactionEffect& effect) {
  // Fires before any state changes: an injected failure here models the
  // append being rejected outright (nothing enqueued, no LSN consumed).
  MVIEW_FAULT_POINT("wal.append");
  return AppendPayload(EncodeEffectTail(effect));
}

uint64_t Wal::AppendQuarantine(const std::string& view,
                               const std::string& reason, bool sticky) {
  std::string tail;
  wire::PutU8(&tail, static_cast<uint8_t>(WalRecord::Type::kQuarantine));
  wire::PutString(&tail, view);
  wire::PutString(&tail, reason);
  wire::PutU8(&tail, sticky ? 1 : 0);
  return AppendPayload(std::move(tail));
}

uint64_t Wal::AppendRepair(const std::string& view) {
  std::string tail;
  wire::PutU8(&tail, static_cast<uint8_t>(WalRecord::Type::kRepair));
  wire::PutString(&tail, view);
  return AppendPayload(std::move(tail));
}

uint64_t Wal::AppendPayload(std::string payload_tail) {
  static const uint32_t kAppendName =
      obs::Tracer::Global().InternName("wal_append");
  // Covers enqueue + group-commit wait: the span ends when the record is
  // durable, so its extent is the commit's durability latency.
  obs::TraceSpan span(kAppendName);
  std::unique_lock<std::mutex> lk(mu_);
  ThrowIfFailed();
  uint64_t lsn = next_lsn_++;
  std::string payload;
  payload.reserve(sizeof(uint64_t) + payload_tail.size());
  wire::PutU64(&payload, lsn);
  payload += payload_tail;
  std::string record;
  wire::PutU32(&record, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&record, Crc32(payload.data(), payload.size()));
  record.append(payload);
  if (pending_.empty()) batch_open_ = std::chrono::steady_clock::now();
  pending_.push_back(std::move(record));
  cv_batch_.notify_all();  // a window-waiting leader may now have a full batch
  while (true) {
    if (durable_lsn_ >= lsn) return lsn;
    ThrowIfFailed();  // the batch carrying our record failed with the log
    if (!leader_active_) {
      LeadBatch(lk);
    } else {
      cv_durable_.wait(lk);
    }
  }
}

void Wal::LeadBatch(std::unique_lock<std::mutex>& lk) {
  leader_active_ = true;
  // Hold the batch open, measured from its *first* commit, so the window
  // overlaps the previous batch's fsync instead of stacking after it.
  if (options_.group_commit_window.count() > 0) {
    auto deadline = batch_open_ + options_.group_commit_window;
    while (pending_.size() < options_.max_batch &&
           std::chrono::steady_clock::now() < deadline) {
      cv_batch_.wait_until(lk, deadline);
    }
  }
  size_t take = std::min(pending_.size(), options_.max_batch);
  std::string batch;
  for (size_t i = 0; i < take; ++i) {
    batch += pending_.front();
    pending_.pop_front();
  }
  if (!pending_.empty()) batch_open_ = std::chrono::steady_clock::now();
  uint64_t batch_last = durable_lsn_ + take;

  lk.unlock();
  static const uint32_t kFsyncName =
      obs::Tracer::Global().InternName("wal_fsync");
  static const uint32_t kBatchArg =
      obs::Tracer::Global().InternName("batch_commits");
  int64_t nanos = 0;
  bool ok = true;
  std::string error;
  {
    obs::TraceSpan span(kFsyncName);
    span.SetArg(kBatchArg, static_cast<int64_t>(take));
    try {
      nanos = WriteAndSync(batch);
    } catch (const Error& e) {
      ok = false;
      error = e.what();
    }
  }
  lk.lock();

  leader_active_ = false;
  if (!ok) {
    // The records of this batch (and everything after) are not durable;
    // fail the log so every waiter and future append surfaces the error.
    failed_ = true;
    failure_message_ = error;
  } else {
    durable_lsn_ = batch_last;
    stats_.records_appended += static_cast<int64_t>(take);
    stats_.bytes_appended += static_cast<int64_t>(batch.size());
    ++stats_.fsyncs;
    stats_.fsync_nanos += nanos;
    stats_.fsync_latency.Record(nanos);
    stats_.batch_commits.Record(static_cast<int64_t>(take));
  }
  cv_durable_.notify_all();
}

void Wal::Rotate(uint64_t base_lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  MVIEW_CHECK(!leader_active_ && pending_.empty(),
              "wal: Rotate must not race appends");
  ThrowIfFailed();
  MVIEW_CHECK(base_lsn + 1 >= next_lsn_,
              "wal: cannot rotate to base LSN ", base_lsn,
              " below already-assigned LSN ", next_lsn_ - 1);
  // Truncating the live file in place would open a window where a crash
  // leaves an empty or half-written header and LSN assignment restarts
  // below the checkpoint.  Build the new log beside the old one and swap
  // it in atomically instead: a crash leaves the old records (covered by
  // the checkpoint, skipped at replay) or the complete new header.
  const std::string tmp = path_ + ".tmp";
  int nfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (nfd < 0) ThrowErrno("open", tmp);
  try {
    std::string header(kMagic, sizeof(kMagic));
    wire::PutU64(&header, base_lsn);
    size_t done = 0;
    while (done < header.size()) {
      ssize_t n = ::pwrite(nfd, header.data() + done, header.size() - done,
                           static_cast<off_t>(done));
      if (n < 0) ThrowErrno("write", tmp);
      done += static_cast<size_t>(n);
    }
    if (options_.fsync && ::fsync(nfd) != 0) ThrowErrno("fsync", tmp);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) ThrowErrno("rename", path_);
  } catch (...) {
    ::close(nfd);
    ::unlink(tmp.c_str());
    throw;
  }
  // Make the swap itself durable (best effort: some filesystems reject
  // directory fsync).
  if (options_.fsync) {
    std::string dir = std::filesystem::path(path_).parent_path().string();
    if (dir.empty()) dir = ".";
    int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  ::close(fd_);
  fd_ = nfd;
  if (::lseek(fd_, static_cast<off_t>(kHeaderSize), SEEK_SET) < 0) {
    ThrowErrno("lseek", path_);
  }
  base_lsn_ = base_lsn;
  next_lsn_ = base_lsn + 1;
  durable_lsn_ = base_lsn;
}

void Wal::Fail(const std::string& message) {
  std::unique_lock<std::mutex> lk(mu_);
  if (failed_) return;
  failed_ = true;
  failure_message_ = message;
  cv_durable_.notify_all();
}

bool Wal::failed() const {
  std::unique_lock<std::mutex> lk(mu_);
  return failed_;
}

WalStats Wal::stats() const {
  std::unique_lock<std::mutex> lk(mu_);
  WalStats s = stats_;
  s.base_lsn = base_lsn_;
  s.durable_lsn = durable_lsn_;
  s.next_lsn = next_lsn_;
  return s;
}

}  // namespace mview::storage
