#ifndef MVIEW_STORAGE_CHECKPOINT_H_
#define MVIEW_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "ivm/integrity.h"
#include "ivm/view_def.h"
#include "ivm/view_manager.h"
#include "relational/relation.h"

namespace mview::storage {

/// One view's captured state inside a checkpoint: definition, maintenance
/// configuration, the *exact* materialization (a deferred view may be
/// stale — recovery must not lose that), and the pending change backlog.
struct CheckpointView {
  struct PendingLog {
    std::vector<Tuple> inserts;
    std::vector<Tuple> deletes;
  };

  std::string name;
  MaintenanceMode mode = MaintenanceMode::kImmediate;
  MaintenanceOptions options;
  ViewDefinition definition;
  CountedRelation materialized;
  /// One entry per base occurrence for deferred views; empty otherwise.
  std::vector<PendingLog> pending;
  /// View health at checkpoint time: a quarantined view stays quarantined
  /// across recovery (its materialization is untrusted until repaired).
  bool quarantined = false;
  std::string quarantine_reason;
  bool quarantine_sticky = false;
};

/// A decoded checkpoint: everything needed to rebuild the engine state as
/// of `lsn`, after which the WAL tail (records with LSN > `lsn`) replays.
struct CheckpointData {
  uint64_t lsn = 0;
  std::vector<std::pair<std::string, Relation>> tables;
  std::vector<CheckpointView> views;
  /// Error-predicate definitions of registered assertions; re-registered
  /// *after* WAL replay so their error views reflect the final state.
  std::vector<ViewDefinition> assertions;
};

/// Writes a checkpoint of the full engine state to `path` atomically
/// (write to a temp file, fsync, rename, fsync the directory): a crash at
/// any point leaves either the old checkpoint or the new one, never a
/// torn file.  `lsn` is the highest WAL LSN the snapshot covers; `guard`
/// may be null when the engine has no integrity guard.
///
/// Table and view contents are embedded as CSV blobs (the `relational/`
/// codecs), conditions structurally — `Condition::ToString` is not
/// re-parseable, so no text round-trip.  Throws `IoError` on file errors.
///
/// A successful monolithic write also deletes any incremental manifest
/// and its segments in the same directory — the fresh file supersedes
/// them, and leaving a stale higher-LSN manifest behind would win the
/// next recovery.  Returns the bytes written.
uint64_t WriteCheckpoint(const std::string& path, uint64_t lsn,
                         const Database& db, const ViewManager& views,
                         const IntegrityGuard* guard);

/// Reads a checkpoint written by `WriteCheckpoint`.  Returns nullopt when
/// no file exists at `path` (a fresh database); throws `CorruptionError`
/// when the file exists but fails validation (bad magic, CRC mismatch,
/// undecodable body) and `IoError` on read errors.
std::optional<CheckpointData> ReadCheckpoint(const std::string& path);

// --- incremental (partition-segment) checkpoints ---------------------------
//
// The incremental format splits a checkpoint into a small manifest
// (`manifest.mv`) and one row segment per (scope, hash partition)
// (`seg_<generation>_<seq>.mv`).  The manifest carries everything
// non-row — LSN, table names, view definitions/options/health/pending
// backlogs, assertions — plus, per scope, the ordered list of segment
// files holding its partitions' rows.  Writing a new checkpoint rewrites
// only the segments of partitions the dirty map reports changed; clean
// partitions carry their previous generation's file forward, so
// checkpoint cost is O(dirty partitions), not O(database).
//
// The manifest rename is the commit point: segments are written and
// fsynced first (a crash leaves unreferenced orphans, removed by the next
// writer's sweep), then the manifest replaces its predecessor atomically.
// Pending backlogs ride in the manifest rather than in segments because
// deferred logging mutates them without touching the materialization —
// the dirty map tracks rows, and the manifest is rewritten every time.

/// One scope's (table's or view's) segment listing: `segments[p]` holds
/// partition `p`'s rows.  Size always equals the manifest's `partitions`.
struct SegmentList {
  std::string name;
  std::vector<std::string> segments;  // file names relative to the dir
};

/// A decoded `manifest.mv`.  `views` metadata lives in `view_meta`
/// (parallel to `view_segments`) with `materialized` left empty — rows
/// live in the segments.
struct CheckpointManifest {
  uint64_t lsn = 0;
  uint64_t generation = 0;  // monotonic per manifest write
  uint32_t partitions = 0;  // row-hash partition count of every scope
  std::vector<SegmentList> tables;
  std::vector<CheckpointView> view_meta;  // materialized empty
  std::vector<SegmentList> view_segments;
  std::vector<ViewDefinition> assertions;
};

/// Byte/segment accounting of one incremental write.
struct IncrementalStats {
  uint64_t bytes_written = 0;      // manifest + fresh segments
  int64_t segments_written = 0;    // fresh segment files
  int64_t partitions_skipped = 0;  // carried forward unchanged
};

/// Writes an incremental checkpoint into `dir`.  Partitions whose scope
/// is clean in `dirty` reuse `prev`'s segments; everything else (no
/// `prev`, partition-count mismatch, scope absent from `prev`, or dirty)
/// is rewritten.  Fires "checkpoint.write" once up front and
/// "checkpoint.segment" before each fresh segment; a failure at either
/// leaves the previous manifest fully authoritative.  After the manifest
/// commits, unreferenced `seg_*.mv` files and any monolithic
/// `checkpoint.mv` are removed.  Returns the new manifest.
CheckpointManifest WriteIncrementalCheckpoint(
    const std::string& dir, uint64_t lsn, const Database& db,
    const ViewManager& views, const IntegrityGuard* guard,
    const PartitionDirtyMap& dirty, uint32_t partitions,
    const CheckpointManifest* prev, IncrementalStats* stats);

/// A checkpoint recovered by `ReadCheckpointAuto`: the decoded state plus
/// the manifest it came from when the incremental image won (absent when
/// the monolithic file did).
struct RecoveredCheckpoint {
  CheckpointData data;
  std::optional<CheckpointManifest> manifest;
};

/// Reads whichever checkpoint image in `dir` is newest: decodes both
/// `checkpoint.mv` and `manifest.mv` headers when present, picks the
/// higher LSN (the monolithic file wins ties — it is written as the
/// superseding image).  Returns nullopt when neither exists.
std::optional<RecoveredCheckpoint> ReadCheckpointAuto(const std::string& dir);

}  // namespace mview::storage

#endif  // MVIEW_STORAGE_CHECKPOINT_H_
