#ifndef MVIEW_STORAGE_CHECKPOINT_H_
#define MVIEW_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "ivm/integrity.h"
#include "ivm/view_def.h"
#include "ivm/view_manager.h"
#include "relational/relation.h"

namespace mview::storage {

/// One view's captured state inside a checkpoint: definition, maintenance
/// configuration, the *exact* materialization (a deferred view may be
/// stale — recovery must not lose that), and the pending change backlog.
struct CheckpointView {
  struct PendingLog {
    std::vector<Tuple> inserts;
    std::vector<Tuple> deletes;
  };

  std::string name;
  MaintenanceMode mode = MaintenanceMode::kImmediate;
  MaintenanceOptions options;
  ViewDefinition definition;
  CountedRelation materialized;
  /// One entry per base occurrence for deferred views; empty otherwise.
  std::vector<PendingLog> pending;
  /// View health at checkpoint time: a quarantined view stays quarantined
  /// across recovery (its materialization is untrusted until repaired).
  bool quarantined = false;
  std::string quarantine_reason;
  bool quarantine_sticky = false;
};

/// A decoded checkpoint: everything needed to rebuild the engine state as
/// of `lsn`, after which the WAL tail (records with LSN > `lsn`) replays.
struct CheckpointData {
  uint64_t lsn = 0;
  std::vector<std::pair<std::string, Relation>> tables;
  std::vector<CheckpointView> views;
  /// Error-predicate definitions of registered assertions; re-registered
  /// *after* WAL replay so their error views reflect the final state.
  std::vector<ViewDefinition> assertions;
};

/// Writes a checkpoint of the full engine state to `path` atomically
/// (write to a temp file, fsync, rename, fsync the directory): a crash at
/// any point leaves either the old checkpoint or the new one, never a
/// torn file.  `lsn` is the highest WAL LSN the snapshot covers; `guard`
/// may be null when the engine has no integrity guard.
///
/// Table and view contents are embedded as CSV blobs (the `relational/`
/// codecs), conditions structurally — `Condition::ToString` is not
/// re-parseable, so no text round-trip.  Throws `IoError` on file errors.
void WriteCheckpoint(const std::string& path, uint64_t lsn,
                     const Database& db, const ViewManager& views,
                     const IntegrityGuard* guard);

/// Reads a checkpoint written by `WriteCheckpoint`.  Returns nullopt when
/// no file exists at `path` (a fresh database); throws `CorruptionError`
/// when the file exists but fails validation (bad magic, CRC mismatch,
/// undecodable body) and `IoError` on read errors.
std::optional<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace mview::storage

#endif  // MVIEW_STORAGE_CHECKPOINT_H_
