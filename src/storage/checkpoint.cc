#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "relational/csv.h"
#include "storage/wal.h"
#include "util/fault.h"

namespace mview::storage {
namespace {

// "02" added the per-view health fields (quarantine flag, reason,
// stickiness).  No migration: a checkpoint is rewritten wholesale on every
// CHECKPOINT/close, so no deployment carries an old file across versions.
constexpr char kMagic[8] = {'M', 'V', 'C', 'K', 'P', 'T', '0', '2'};

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw IoError("checkpoint: " + what + " failed for " + path + ": " +
                std::strerror(errno));
}

// --- structural (de)serialization of definitions ---------------------------
//
// `Condition::ToString` double-quotes string constants while the condition
// parser expects single quotes, so conditions do not survive a text round
// trip; atoms are encoded field by field instead.

void PutAtom(std::string* out, const Atom& atom) {
  wire::PutString(out, atom.lhs);
  wire::PutU8(out, static_cast<uint8_t>(atom.op));
  wire::PutU8(out, atom.rhs_var.has_value() ? 1 : 0);
  if (atom.rhs_var.has_value()) {
    wire::PutString(out, *atom.rhs_var);
    wire::PutI64(out, atom.offset);
  } else {
    wire::PutValue(out, atom.rhs_const);
  }
}

Atom GetAtom(wire::Reader* r) {
  Atom atom;
  atom.lhs = r->GetString();
  uint8_t op = r->GetU8();
  if (op > static_cast<uint8_t>(CompareOp::kGe)) {
    throw CorruptionError("checkpoint: bad comparison operator tag");
  }
  atom.op = static_cast<CompareOp>(op);
  if (r->GetU8() != 0) {
    atom.rhs_var = r->GetString();
    atom.offset = r->GetI64();
  } else {
    atom.rhs_const = r->GetValue();
  }
  return atom;
}

void PutCondition(std::string* out, const Condition& cond) {
  wire::PutU32(out, static_cast<uint32_t>(cond.disjuncts().size()));
  for (const auto& conj : cond.disjuncts()) {
    wire::PutU32(out, static_cast<uint32_t>(conj.atoms.size()));
    for (const auto& atom : conj.atoms) PutAtom(out, atom);
  }
}

Condition GetCondition(wire::Reader* r) {
  uint32_t n_disjuncts = r->GetCount();
  std::vector<Conjunction> disjuncts;
  disjuncts.reserve(n_disjuncts);
  for (uint32_t d = 0; d < n_disjuncts; ++d) {
    Conjunction conj;
    uint32_t n_atoms = r->GetCount();
    conj.atoms.reserve(n_atoms);
    for (uint32_t a = 0; a < n_atoms; ++a) conj.atoms.push_back(GetAtom(r));
    disjuncts.push_back(std::move(conj));
  }
  return Condition(std::move(disjuncts));
}

void PutStrings(std::string* out, const std::vector<std::string>& v) {
  wire::PutU32(out, static_cast<uint32_t>(v.size()));
  for (const auto& s : v) wire::PutString(out, s);
}

std::vector<std::string> GetStrings(wire::Reader* r) {
  uint32_t n = r->GetCount();
  std::vector<std::string> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(r->GetString());
  return v;
}

void PutDefinition(std::string* out, const ViewDefinition& def) {
  wire::PutString(out, def.name());
  wire::PutU32(out, static_cast<uint32_t>(def.bases().size()));
  for (const auto& base : def.bases()) {
    wire::PutString(out, base.relation);
    PutStrings(out, base.aliases);
  }
  PutCondition(out, def.condition());
  PutStrings(out, def.projection());
}

ViewDefinition GetDefinition(wire::Reader* r) {
  std::string name = r->GetString();
  uint32_t n_bases = r->GetCount();
  std::vector<BaseRef> bases;
  bases.reserve(n_bases);
  for (uint32_t i = 0; i < n_bases; ++i) {
    BaseRef base;
    base.relation = r->GetString();
    base.aliases = GetStrings(r);
    bases.push_back(std::move(base));
  }
  Condition cond = GetCondition(r);
  std::vector<std::string> projection = GetStrings(r);
  return ViewDefinition(std::move(name), std::move(bases), std::move(cond),
                        std::move(projection));
}

template <typename RelationT>
std::string ToCsvBlob(const RelationT& relation) {
  std::ostringstream out;
  WriteCsv(relation, out);
  return out.str();
}

void PutTuples(std::string* out, const std::vector<Tuple>& tuples) {
  wire::PutU32(out, static_cast<uint32_t>(tuples.size()));
  for (const auto& t : tuples) wire::PutTuple(out, t);
}

std::vector<Tuple> GetTuples(wire::Reader* r) {
  uint32_t n = r->GetCount();
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) tuples.push_back(r->GetTuple());
  return tuples;
}

std::string EncodeBody(uint64_t lsn, const Database& db,
                       const ViewManager& views, const IntegrityGuard* guard) {
  std::string body;
  wire::PutU64(&body, lsn);

  std::vector<std::string> tables = db.Names();
  wire::PutU32(&body, static_cast<uint32_t>(tables.size()));
  for (const auto& name : tables) {
    wire::PutString(&body, name);
    wire::PutString(&body, ToCsvBlob(db.Get(name)));
  }

  std::vector<std::string> view_names = views.ViewNames();
  wire::PutU32(&body, static_cast<uint32_t>(view_names.size()));
  for (const auto& name : view_names) {
    ViewInfo info = views.Describe(name);
    const MaintenanceOptions& opts = views.Maintainer(name).options();
    wire::PutString(&body, name);
    wire::PutU8(&body, static_cast<uint8_t>(info.mode));
    wire::PutU8(&body, opts.use_irrelevance_filter ? 1 : 0);
    wire::PutU8(&body, opts.reuse_subexpressions ? 1 : 0);
    wire::PutU8(&body, static_cast<uint8_t>(opts.strategy));
    wire::PutU8(&body, info.quarantined ? 1 : 0);
    wire::PutString(&body, info.quarantine_reason);
    wire::PutU8(&body, info.quarantine_sticky ? 1 : 0);
    PutDefinition(&body, info.definition);
    // The raw materialization, not `View()`: a quarantined view's contents
    // still checkpoint (recovery restores them alongside the quarantine
    // flag; `REPAIR VIEW` rebuilds from bases later).
    wire::PutString(&body, ToCsvBlob(views.Materialization(name)));
    const auto& pending = views.PendingLogs(name);
    wire::PutU32(&body, static_cast<uint32_t>(pending.size()));
    for (const auto& log : pending) {
      // ForEachNetChange streams inserts then deletes in sorted order;
      // split them back out so each section carries its own count.
      std::vector<Tuple> inserts, deletes;
      log->ForEachNetChange([&](const Tuple& t, bool is_insert) {
        (is_insert ? inserts : deletes).push_back(t);
      });
      PutTuples(&body, inserts);
      PutTuples(&body, deletes);
    }
  }

  std::vector<std::string> assertions =
      guard == nullptr ? std::vector<std::string>{} : guard->AssertionNames();
  wire::PutU32(&body, static_cast<uint32_t>(assertions.size()));
  for (const auto& name : assertions) {
    PutDefinition(&body, guard->Definition(name));
  }
  return body;
}

CheckpointData DecodeBody(const std::string& body) {
  wire::Reader r(body);
  CheckpointData data;
  data.lsn = r.GetU64();

  uint32_t n_tables = r.GetCount();
  for (uint32_t i = 0; i < n_tables; ++i) {
    std::string name = r.GetString();
    std::istringstream csv(r.GetString());
    data.tables.emplace_back(std::move(name), ReadCsv(csv));
  }

  uint32_t n_views = r.GetCount();
  for (uint32_t i = 0; i < n_views; ++i) {
    CheckpointView view;
    view.name = r.GetString();
    uint8_t mode = r.GetU8();
    if (mode > static_cast<uint8_t>(MaintenanceMode::kFullReevaluation)) {
      throw CorruptionError("checkpoint: bad maintenance mode tag");
    }
    view.mode = static_cast<MaintenanceMode>(mode);
    view.options.use_irrelevance_filter = r.GetU8() != 0;
    view.options.reuse_subexpressions = r.GetU8() != 0;
    uint8_t strategy = r.GetU8();
    if (strategy > static_cast<uint8_t>(DeltaStrategy::kTelescoped)) {
      throw CorruptionError("checkpoint: bad delta strategy tag");
    }
    view.options.strategy = static_cast<DeltaStrategy>(strategy);
    view.quarantined = r.GetU8() != 0;
    view.quarantine_reason = r.GetString();
    view.quarantine_sticky = r.GetU8() != 0;
    view.definition = GetDefinition(&r);
    std::istringstream csv(r.GetString());
    view.materialized = ReadCountedCsv(csv);
    uint32_t n_logs = r.GetCount();
    for (uint32_t l = 0; l < n_logs; ++l) {
      CheckpointView::PendingLog log;
      log.inserts = GetTuples(&r);
      log.deletes = GetTuples(&r);
      view.pending.push_back(std::move(log));
    }
    data.views.push_back(std::move(view));
  }

  uint32_t n_assertions = r.GetCount();
  for (uint32_t i = 0; i < n_assertions; ++i) {
    data.assertions.push_back(GetDefinition(&r));
  }
  if (!r.AtEnd()) {
    throw CorruptionError("checkpoint: trailing bytes after body");
  }
  return data;
}

void WriteAll(int fd, const std::string& data, const std::string& path) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) ThrowErrno("write", path);
    done += static_cast<size_t>(n);
  }
}

}  // namespace

void WriteCheckpoint(const std::string& path, uint64_t lsn,
                     const Database& db, const ViewManager& views,
                     const IntegrityGuard* guard) {
  // Fires before the temp file exists, so an injected failure leaves the
  // previous checkpoint (and the un-rotated WAL) fully authoritative.
  MVIEW_FAULT_POINT("checkpoint.write");
  std::string body = EncodeBody(lsn, db, views, guard);
  std::string file(kMagic, sizeof(kMagic));
  wire::PutU32(&file, Crc32(body.data(), body.size()));
  wire::PutU64(&file, static_cast<uint64_t>(body.size()));
  file.append(body);

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("open", tmp);
  try {
    WriteAll(fd, file, tmp);
    if (::fsync(fd) != 0) ThrowErrno("fsync", tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) ThrowErrno("rename", path);

  // Make the rename itself durable.
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort: some filesystems reject directory fsync
    ::close(dfd);
  }
}

std::optional<CheckpointData> ReadCheckpoint(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    ThrowErrno("open", path);
  }
  std::string contents;
  try {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) ThrowErrno("lseek", path);
    contents.resize(static_cast<size_t>(size));
    size_t done = 0;
    while (done < contents.size()) {
      ssize_t n = ::pread(fd, contents.data() + done, contents.size() - done,
                          static_cast<off_t>(done));
      if (n < 0) ThrowErrno("read", path);
      if (n == 0) break;
      done += static_cast<size_t>(n);
    }
    contents.resize(done);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  constexpr size_t kPrefix = sizeof(kMagic) + 4 + 8;
  if (contents.size() < kPrefix ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CorruptionError("checkpoint: bad header in " + path);
  }
  wire::Reader prefix(contents.data() + sizeof(kMagic), 12);
  uint32_t crc = prefix.GetU32();
  uint64_t body_len = prefix.GetU64();
  if (contents.size() != kPrefix + body_len) {
    throw CorruptionError("checkpoint: truncated body in " + path);
  }
  const char* body = contents.data() + kPrefix;
  if (Crc32(body, body_len) != crc) {
    throw CorruptionError("checkpoint: CRC mismatch in " + path);
  }
  try {
    return DecodeBody(std::string(body, body_len));
  } catch (const CorruptionError&) {
    throw;
  } catch (const Error& e) {
    // CSV or definition decoding failed on a CRC-valid file: still
    // corruption from the caller's perspective.
    throw CorruptionError(std::string("checkpoint: undecodable body: ") +
                          e.what());
  }
}

}  // namespace mview::storage
