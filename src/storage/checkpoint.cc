#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <unordered_set>

#include "relational/csv.h"
#include "relational/partition.h"
#include "storage/wal.h"
#include "util/fault.h"

namespace mview::storage {
namespace {

// "02" added the per-view health fields (quarantine flag, reason,
// stickiness); "03" the per-view partition count.  No migration: a
// checkpoint is rewritten wholesale on every CHECKPOINT/close, so no
// deployment carries an old file across versions.
constexpr char kMagic[8] = {'M', 'V', 'C', 'K', 'P', 'T', '0', '3'};
// Incremental checkpoint manifest and row-segment files (see the header's
// format note; the manifest rename is the commit point).
constexpr char kManifestMagic[8] = {'M', 'V', 'M', 'A', 'N', 'I', 'F', '1'};
constexpr char kSegmentMagic[8] = {'M', 'V', 'S', 'E', 'G', '0', '0', '1'};

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw IoError("checkpoint: " + what + " failed for " + path + ": " +
                std::strerror(errno));
}

// --- structural (de)serialization of definitions ---------------------------
//
// `Condition::ToString` double-quotes string constants while the condition
// parser expects single quotes, so conditions do not survive a text round
// trip; atoms are encoded field by field instead.

void PutAtom(std::string* out, const Atom& atom) {
  wire::PutString(out, atom.lhs);
  wire::PutU8(out, static_cast<uint8_t>(atom.op));
  wire::PutU8(out, atom.rhs_var.has_value() ? 1 : 0);
  if (atom.rhs_var.has_value()) {
    wire::PutString(out, *atom.rhs_var);
    wire::PutI64(out, atom.offset);
  } else {
    wire::PutValue(out, atom.rhs_const);
  }
}

Atom GetAtom(wire::Reader* r) {
  Atom atom;
  atom.lhs = r->GetString();
  uint8_t op = r->GetU8();
  if (op > static_cast<uint8_t>(CompareOp::kGe)) {
    throw CorruptionError("checkpoint: bad comparison operator tag");
  }
  atom.op = static_cast<CompareOp>(op);
  if (r->GetU8() != 0) {
    atom.rhs_var = r->GetString();
    atom.offset = r->GetI64();
  } else {
    atom.rhs_const = r->GetValue();
  }
  return atom;
}

void PutCondition(std::string* out, const Condition& cond) {
  wire::PutU32(out, static_cast<uint32_t>(cond.disjuncts().size()));
  for (const auto& conj : cond.disjuncts()) {
    wire::PutU32(out, static_cast<uint32_t>(conj.atoms.size()));
    for (const auto& atom : conj.atoms) PutAtom(out, atom);
  }
}

Condition GetCondition(wire::Reader* r) {
  uint32_t n_disjuncts = r->GetCount();
  std::vector<Conjunction> disjuncts;
  disjuncts.reserve(n_disjuncts);
  for (uint32_t d = 0; d < n_disjuncts; ++d) {
    Conjunction conj;
    uint32_t n_atoms = r->GetCount();
    conj.atoms.reserve(n_atoms);
    for (uint32_t a = 0; a < n_atoms; ++a) conj.atoms.push_back(GetAtom(r));
    disjuncts.push_back(std::move(conj));
  }
  return Condition(std::move(disjuncts));
}

void PutStrings(std::string* out, const std::vector<std::string>& v) {
  wire::PutU32(out, static_cast<uint32_t>(v.size()));
  for (const auto& s : v) wire::PutString(out, s);
}

std::vector<std::string> GetStrings(wire::Reader* r) {
  uint32_t n = r->GetCount();
  std::vector<std::string> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(r->GetString());
  return v;
}

void PutDefinition(std::string* out, const ViewDefinition& def) {
  wire::PutString(out, def.name());
  wire::PutU32(out, static_cast<uint32_t>(def.bases().size()));
  for (const auto& base : def.bases()) {
    wire::PutString(out, base.relation);
    PutStrings(out, base.aliases);
  }
  PutCondition(out, def.condition());
  PutStrings(out, def.projection());
}

ViewDefinition GetDefinition(wire::Reader* r) {
  std::string name = r->GetString();
  uint32_t n_bases = r->GetCount();
  std::vector<BaseRef> bases;
  bases.reserve(n_bases);
  for (uint32_t i = 0; i < n_bases; ++i) {
    BaseRef base;
    base.relation = r->GetString();
    base.aliases = GetStrings(r);
    bases.push_back(std::move(base));
  }
  Condition cond = GetCondition(r);
  std::vector<std::string> projection = GetStrings(r);
  return ViewDefinition(std::move(name), std::move(bases), std::move(cond),
                        std::move(projection));
}

template <typename RelationT>
std::string ToCsvBlob(const RelationT& relation) {
  std::ostringstream out;
  WriteCsv(relation, out);
  return out.str();
}

void PutTuples(std::string* out, const std::vector<Tuple>& tuples) {
  wire::PutU32(out, static_cast<uint32_t>(tuples.size()));
  for (const auto& t : tuples) wire::PutTuple(out, t);
}

std::vector<Tuple> GetTuples(wire::Reader* r) {
  uint32_t n = r->GetCount();
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) tuples.push_back(r->GetTuple());
  return tuples;
}

/// Captures everything about a view except its materialization's rows —
/// the metadata shared by the monolithic body and the manifest.
CheckpointView BuildViewMeta(const ViewManager& views,
                             const std::string& name) {
  ViewInfo info = views.Describe(name);
  CheckpointView view;
  view.name = name;
  view.mode = info.mode;
  view.options = views.Maintainer(name).options();
  view.definition = std::move(info.definition);
  view.quarantined = info.quarantined;
  view.quarantine_reason = std::move(info.quarantine_reason);
  view.quarantine_sticky = info.quarantine_sticky;
  for (const auto& log : views.PendingLogs(name)) {
    // ForEachNetChange streams inserts then deletes in sorted order;
    // split them back out so each section carries its own count.
    CheckpointView::PendingLog out;
    log->ForEachNetChange([&](const Tuple& t, bool is_insert) {
      (is_insert ? out.inserts : out.deletes).push_back(t);
    });
    view.pending.push_back(std::move(out));
  }
  return view;
}

void PutViewMeta(std::string* body, const CheckpointView& view) {
  wire::PutString(body, view.name);
  wire::PutU8(body, static_cast<uint8_t>(view.mode));
  wire::PutU8(body, view.options.use_irrelevance_filter ? 1 : 0);
  wire::PutU8(body, view.options.reuse_subexpressions ? 1 : 0);
  wire::PutU8(body, static_cast<uint8_t>(view.options.strategy));
  wire::PutU32(body, view.options.partition_count);
  wire::PutU8(body, view.quarantined ? 1 : 0);
  wire::PutString(body, view.quarantine_reason);
  wire::PutU8(body, view.quarantine_sticky ? 1 : 0);
  PutDefinition(body, view.definition);
}

CheckpointView GetViewMeta(wire::Reader* r) {
  CheckpointView view;
  view.name = r->GetString();
  uint8_t mode = r->GetU8();
  if (mode > static_cast<uint8_t>(MaintenanceMode::kFullReevaluation)) {
    throw CorruptionError("checkpoint: bad maintenance mode tag");
  }
  view.mode = static_cast<MaintenanceMode>(mode);
  view.options.use_irrelevance_filter = r->GetU8() != 0;
  view.options.reuse_subexpressions = r->GetU8() != 0;
  uint8_t strategy = r->GetU8();
  if (strategy > static_cast<uint8_t>(DeltaStrategy::kTelescoped)) {
    throw CorruptionError("checkpoint: bad delta strategy tag");
  }
  view.options.strategy = static_cast<DeltaStrategy>(strategy);
  view.options.partition_count = r->GetU32();
  if (view.options.partition_count == 0) {
    throw CorruptionError("checkpoint: zero view partition count");
  }
  view.quarantined = r->GetU8() != 0;
  view.quarantine_reason = r->GetString();
  view.quarantine_sticky = r->GetU8() != 0;
  view.definition = GetDefinition(r);
  return view;
}

void PutPendingLogs(std::string* body, const CheckpointView& view) {
  wire::PutU32(body, static_cast<uint32_t>(view.pending.size()));
  for (const auto& log : view.pending) {
    PutTuples(body, log.inserts);
    PutTuples(body, log.deletes);
  }
}

void GetPendingLogs(wire::Reader* r, CheckpointView* view) {
  uint32_t n_logs = r->GetCount();
  for (uint32_t l = 0; l < n_logs; ++l) {
    CheckpointView::PendingLog log;
    log.inserts = GetTuples(r);
    log.deletes = GetTuples(r);
    view->pending.push_back(std::move(log));
  }
}

void PutAssertions(std::string* body, const IntegrityGuard* guard) {
  std::vector<std::string> assertions =
      guard == nullptr ? std::vector<std::string>{} : guard->AssertionNames();
  wire::PutU32(body, static_cast<uint32_t>(assertions.size()));
  for (const auto& name : assertions) {
    PutDefinition(body, guard->Definition(name));
  }
}

std::string EncodeBody(uint64_t lsn, const Database& db,
                       const ViewManager& views, const IntegrityGuard* guard) {
  std::string body;
  wire::PutU64(&body, lsn);

  std::vector<std::string> tables = db.Names();
  wire::PutU32(&body, static_cast<uint32_t>(tables.size()));
  for (const auto& name : tables) {
    wire::PutString(&body, name);
    wire::PutString(&body, ToCsvBlob(db.Get(name)));
  }

  std::vector<std::string> view_names = views.ViewNames();
  wire::PutU32(&body, static_cast<uint32_t>(view_names.size()));
  for (const auto& name : view_names) {
    CheckpointView meta = BuildViewMeta(views, name);
    PutViewMeta(&body, meta);
    // The raw materialization, not `View()`: a quarantined view's contents
    // still checkpoint (recovery restores them alongside the quarantine
    // flag; `REPAIR VIEW` rebuilds from bases later).
    wire::PutString(&body, ToCsvBlob(views.Materialization(name)));
    PutPendingLogs(&body, meta);
  }

  PutAssertions(&body, guard);
  return body;
}

CheckpointData DecodeBody(const std::string& body) {
  wire::Reader r(body);
  CheckpointData data;
  data.lsn = r.GetU64();

  uint32_t n_tables = r.GetCount();
  for (uint32_t i = 0; i < n_tables; ++i) {
    std::string name = r.GetString();
    std::istringstream csv(r.GetString());
    data.tables.emplace_back(std::move(name), ReadCsv(csv));
  }

  uint32_t n_views = r.GetCount();
  for (uint32_t i = 0; i < n_views; ++i) {
    CheckpointView view = GetViewMeta(&r);
    std::istringstream csv(r.GetString());
    view.materialized = ReadCountedCsv(csv);
    GetPendingLogs(&r, &view);
    data.views.push_back(std::move(view));
  }

  uint32_t n_assertions = r.GetCount();
  for (uint32_t i = 0; i < n_assertions; ++i) {
    data.assertions.push_back(GetDefinition(&r));
  }
  if (!r.AtEnd()) {
    throw CorruptionError("checkpoint: trailing bytes after body");
  }
  return data;
}

// --- framed file I/O -------------------------------------------------------
//
// Every checkpoint artifact (monolithic file, manifest, segment) shares
// one frame: 8-byte magic, CRC32 of the body, body length, body.

void WriteAll(int fd, const std::string& data, const std::string& path) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) ThrowErrno("write", path);
    done += static_cast<size_t>(n);
  }
}

std::string Frame(const char magic[8], const std::string& body) {
  std::string file(magic, 8);
  wire::PutU32(&file, Crc32(body.data(), body.size()));
  wire::PutU64(&file, static_cast<uint64_t>(body.size()));
  file.append(body);
  return file;
}

void WriteFileDurable(const std::string& path, const std::string& contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("open", path);
  try {
    WriteAll(fd, contents, path);
    if (::fsync(fd) != 0) ThrowErrno("fsync", path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void SyncDirOf(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort: some filesystems reject directory fsync
    ::close(dfd);
  }
}

/// Temp-write + rename + directory sync: a crash at any point leaves
/// either the old file or the new one, never a torn one.
void CommitFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  WriteFileDurable(tmp, contents);
  if (::rename(tmp.c_str(), path.c_str()) != 0) ThrowErrno("rename", path);
  SyncDirOf(path);
}

/// Reads and validates a framed file: nullopt when absent, the body when
/// intact, `CorruptionError` otherwise.
std::optional<std::string> ReadFramedFile(const std::string& path,
                                          const char magic[8]) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    ThrowErrno("open", path);
  }
  std::string contents;
  try {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) ThrowErrno("lseek", path);
    contents.resize(static_cast<size_t>(size));
    size_t done = 0;
    while (done < contents.size()) {
      ssize_t n = ::pread(fd, contents.data() + done, contents.size() - done,
                          static_cast<off_t>(done));
      if (n < 0) ThrowErrno("read", path);
      if (n == 0) break;
      done += static_cast<size_t>(n);
    }
    contents.resize(done);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  constexpr size_t kPrefix = 8 + 4 + 8;
  if (contents.size() < kPrefix ||
      std::memcmp(contents.data(), magic, 8) != 0) {
    throw CorruptionError("checkpoint: bad header in " + path);
  }
  wire::Reader prefix(contents.data() + 8, 12);
  uint32_t crc = prefix.GetU32();
  uint64_t body_len = prefix.GetU64();
  if (contents.size() != kPrefix + body_len) {
    throw CorruptionError("checkpoint: truncated body in " + path);
  }
  const char* body = contents.data() + kPrefix;
  if (Crc32(body, body_len) != crc) {
    throw CorruptionError("checkpoint: CRC mismatch in " + path);
  }
  return std::string(body, body_len);
}

// --- incremental format helpers --------------------------------------------

std::string SegmentName(uint64_t generation, uint32_t seq) {
  return "seg_" + std::to_string(generation) + "_" + std::to_string(seq) +
         ".mv";
}

std::string TableSliceCsv(const Relation& rel, uint32_t p, uint32_t total) {
  Relation slice(rel.schema());
  rel.Scan([&](const Tuple& t) {
    if (PartitionOf(t, kRowHashKey, total) == p) slice.Insert(t);
  });
  return ToCsvBlob(slice);
}

std::string ViewSliceCsv(const CountedRelation& rel, uint32_t p,
                         uint32_t total) {
  CountedRelation slice(rel.schema());
  rel.Scan([&](const Tuple& t, int64_t count) {
    if (PartitionOf(t, kRowHashKey, total) == p) slice.Add(t, count);
  });
  return ToCsvBlob(slice);
}

void PutSegments(std::string* body, const SegmentList& sl) {
  wire::PutString(body, sl.name);
  for (const auto& file : sl.segments) wire::PutString(body, file);
}

SegmentList GetSegments(wire::Reader* r, uint32_t partitions) {
  SegmentList sl;
  sl.name = r->GetString();
  sl.segments.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    sl.segments.push_back(r->GetString());
  }
  return sl;
}

std::string EncodeManifest(const CheckpointManifest& m) {
  std::string body;
  wire::PutU64(&body, m.lsn);
  wire::PutU64(&body, m.generation);
  wire::PutU32(&body, m.partitions);
  wire::PutU32(&body, static_cast<uint32_t>(m.tables.size()));
  for (const auto& sl : m.tables) PutSegments(&body, sl);
  wire::PutU32(&body, static_cast<uint32_t>(m.view_meta.size()));
  for (size_t i = 0; i < m.view_meta.size(); ++i) {
    PutViewMeta(&body, m.view_meta[i]);
    PutPendingLogs(&body, m.view_meta[i]);
    PutSegments(&body, m.view_segments[i]);
  }
  wire::PutU32(&body, static_cast<uint32_t>(m.assertions.size()));
  for (const auto& def : m.assertions) PutDefinition(&body, def);
  return body;
}

CheckpointManifest DecodeManifest(const std::string& body) {
  wire::Reader r(body);
  CheckpointManifest m;
  m.lsn = r.GetU64();
  m.generation = r.GetU64();
  m.partitions = r.GetU32();
  if (m.partitions == 0) {
    throw CorruptionError("checkpoint: zero manifest partition count");
  }
  uint32_t n_tables = r.GetCount();
  for (uint32_t i = 0; i < n_tables; ++i) {
    m.tables.push_back(GetSegments(&r, m.partitions));
  }
  uint32_t n_views = r.GetCount();
  for (uint32_t i = 0; i < n_views; ++i) {
    CheckpointView view = GetViewMeta(&r);
    GetPendingLogs(&r, &view);
    m.view_meta.push_back(std::move(view));
    m.view_segments.push_back(GetSegments(&r, m.partitions));
  }
  uint32_t n_assertions = r.GetCount();
  for (uint32_t i = 0; i < n_assertions; ++i) {
    m.assertions.push_back(GetDefinition(&r));
  }
  if (!r.AtEnd()) {
    throw CorruptionError("checkpoint: trailing bytes after manifest");
  }
  return m;
}

std::optional<CheckpointManifest> ReadManifest(const std::string& path) {
  std::optional<std::string> body = ReadFramedFile(path, kManifestMagic);
  if (!body.has_value()) return std::nullopt;
  try {
    return DecodeManifest(*body);
  } catch (const CorruptionError&) {
    throw;
  } catch (const Error& e) {
    throw CorruptionError(std::string("checkpoint: undecodable manifest: ") +
                          e.what());
  }
}

std::string ReadSegmentBody(const std::string& path) {
  std::optional<std::string> body = ReadFramedFile(path, kSegmentMagic);
  if (!body.has_value()) {
    throw CorruptionError("checkpoint: missing segment " + path);
  }
  return std::move(*body);
}

/// Rebuilds full `CheckpointData` from a manifest: each scope's rows are
/// the union of its partition segments (partitions are disjoint by hash,
/// so plain insertion reassembles exactly).
CheckpointData AssembleFromManifest(const std::string& dir,
                                    const CheckpointManifest& m) {
  CheckpointData data;
  data.lsn = m.lsn;
  try {
    for (const SegmentList& sl : m.tables) {
      std::istringstream first(ReadSegmentBody(dir + "/" + sl.segments[0]));
      Relation merged = ReadCsv(first);
      for (size_t p = 1; p < sl.segments.size(); ++p) {
        std::istringstream csv(ReadSegmentBody(dir + "/" + sl.segments[p]));
        ReadCsv(csv).Scan([&](const Tuple& t) { merged.Insert(t); });
      }
      data.tables.emplace_back(sl.name, std::move(merged));
    }
    for (size_t i = 0; i < m.view_meta.size(); ++i) {
      CheckpointView view = m.view_meta[i];
      const SegmentList& sl = m.view_segments[i];
      std::istringstream first(ReadSegmentBody(dir + "/" + sl.segments[0]));
      CountedRelation merged = ReadCountedCsv(first);
      for (size_t p = 1; p < sl.segments.size(); ++p) {
        std::istringstream csv(ReadSegmentBody(dir + "/" + sl.segments[p]));
        ReadCountedCsv(csv).Scan(
            [&](const Tuple& t, int64_t count) { merged.Add(t, count); });
      }
      view.materialized = std::move(merged);
      data.views.push_back(std::move(view));
    }
  } catch (const CorruptionError&) {
    throw;
  } catch (const Error& e) {
    throw CorruptionError(std::string("checkpoint: undecodable segment: ") +
                          e.what());
  }
  data.assertions = m.assertions;
  return data;
}

/// Deletes `seg_*.mv` files in `dir` that `live` does not reference (pass
/// null to delete them all) plus, always, any leftover temp manifest.
void SweepSegments(const std::string& dir,
                   const std::unordered_set<std::string>* live) {
  std::error_code ec;
  std::filesystem::remove(dir + "/manifest.mv.tmp", ec);
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg_", 0) != 0) continue;
    if (name.size() < 3 || name.substr(name.size() - 3) != ".mv") continue;
    if (live != nullptr && live->count(name) > 0) continue;
    std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace

uint64_t WriteCheckpoint(const std::string& path, uint64_t lsn,
                         const Database& db, const ViewManager& views,
                         const IntegrityGuard* guard) {
  // Fires before the temp file exists, so an injected failure leaves the
  // previous checkpoint (and the un-rotated WAL) fully authoritative.
  MVIEW_FAULT_POINT("checkpoint.write");
  std::string file = Frame(kMagic, EncodeBody(lsn, db, views, guard));
  CommitFile(path, file);

  // The monolithic file now supersedes any incremental image: a stale
  // manifest left behind could carry a higher LSN after the WAL rotates
  // and would win the next recovery with old data.
  const std::string dir =
      std::filesystem::path(path).parent_path().string().empty()
          ? std::string(".")
          : std::filesystem::path(path).parent_path().string();
  std::error_code ec;
  std::filesystem::remove(dir + "/manifest.mv", ec);
  SweepSegments(dir, nullptr);
  return file.size();
}

std::optional<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::optional<std::string> body = ReadFramedFile(path, kMagic);
  if (!body.has_value()) return std::nullopt;
  try {
    return DecodeBody(*body);
  } catch (const CorruptionError&) {
    throw;
  } catch (const Error& e) {
    // CSV or definition decoding failed on a CRC-valid file: still
    // corruption from the caller's perspective.
    throw CorruptionError(std::string("checkpoint: undecodable body: ") +
                          e.what());
  }
}

CheckpointManifest WriteIncrementalCheckpoint(
    const std::string& dir, uint64_t lsn, const Database& db,
    const ViewManager& views, const IntegrityGuard* guard,
    const PartitionDirtyMap& dirty, uint32_t partitions,
    const CheckpointManifest* prev, IncrementalStats* stats) {
  // Same pre-flight fault point as the monolithic writer: nothing on disk
  // has changed yet, so the previous image stays authoritative.
  MVIEW_FAULT_POINT("checkpoint.write");
  IncrementalStats local;
  if (stats == nullptr) stats = &local;

  CheckpointManifest m;
  m.lsn = lsn;
  m.generation = prev == nullptr ? 1 : prev->generation + 1;
  m.partitions = partitions == 0 ? 1 : partitions;
  // Carrying a clean partition forward is only sound when the previous
  // manifest sliced by the same count AND the dirty map tracked every
  // mutation since with that count; anything else rewrites everything.
  const bool carry = prev != nullptr && prev->partitions == m.partitions &&
                     dirty.enabled() && dirty.partitions() == m.partitions;
  auto find_prev = [&](const std::vector<SegmentList>* lists,
                       const std::string& name) -> const SegmentList* {
    if (!carry || lists == nullptr) return nullptr;
    for (const auto& sl : *lists) {
      if (sl.name == name) return &sl;
    }
    return nullptr;
  };
  uint32_t seq = 0;
  auto write_segment = [&](std::string csv) {
    // Fires before each fresh segment: an injected failure mid-checkpoint
    // leaves orphan segments (swept by the next writer) but the previous
    // manifest untouched.
    MVIEW_FAULT_POINT("checkpoint.segment");
    std::string file = SegmentName(m.generation, seq++);
    std::string framed = Frame(kSegmentMagic, csv);
    WriteFileDurable(dir + "/" + file, framed);
    stats->bytes_written += framed.size();
    ++stats->segments_written;
    return file;
  };

  for (const auto& name : db.Names()) {
    const Relation& rel = db.Get(name);
    const SegmentList* old =
        find_prev(prev == nullptr ? nullptr : &prev->tables, name);
    const std::string scope = "t:" + name;
    SegmentList sl;
    sl.name = name;
    for (uint32_t p = 0; p < m.partitions; ++p) {
      if (old != nullptr && !dirty.IsDirty(scope, p)) {
        sl.segments.push_back(old->segments[p]);
        ++stats->partitions_skipped;
      } else {
        sl.segments.push_back(write_segment(TableSliceCsv(rel, p, m.partitions)));
      }
    }
    m.tables.push_back(std::move(sl));
  }
  for (const auto& name : views.ViewNames()) {
    m.view_meta.push_back(BuildViewMeta(views, name));
    const CountedRelation& rel = views.Materialization(name);
    const SegmentList* old =
        find_prev(prev == nullptr ? nullptr : &prev->view_segments, name);
    const std::string scope = "v:" + name;
    SegmentList sl;
    sl.name = name;
    for (uint32_t p = 0; p < m.partitions; ++p) {
      if (old != nullptr && !dirty.IsDirty(scope, p)) {
        sl.segments.push_back(old->segments[p]);
        ++stats->partitions_skipped;
      } else {
        sl.segments.push_back(write_segment(ViewSliceCsv(rel, p, m.partitions)));
      }
    }
    m.view_segments.push_back(std::move(sl));
  }
  if (guard != nullptr) {
    for (const auto& name : guard->AssertionNames()) {
      m.assertions.push_back(guard->Definition(name));
    }
  }

  // Commit point: once the manifest rename lands, the new image is the
  // recovery source; before it, the old manifest still references every
  // segment it needs (fresh ones used new names, nothing was overwritten).
  std::string framed = Frame(kManifestMagic, EncodeManifest(m));
  CommitFile(dir + "/manifest.mv", framed);
  stats->bytes_written += framed.size();

  // The incremental image now supersedes the monolithic file, and
  // segments only the *old* manifest referenced are garbage.
  std::error_code ec;
  std::filesystem::remove(dir + "/checkpoint.mv", ec);
  std::unordered_set<std::string> live;
  for (const auto& sl : m.tables) {
    live.insert(sl.segments.begin(), sl.segments.end());
  }
  for (const auto& sl : m.view_segments) {
    live.insert(sl.segments.begin(), sl.segments.end());
  }
  SweepSegments(dir, &live);
  return m;
}

std::optional<RecoveredCheckpoint> ReadCheckpointAuto(const std::string& dir) {
  std::optional<CheckpointData> mono = ReadCheckpoint(dir + "/checkpoint.mv");
  std::optional<CheckpointManifest> mani = ReadManifest(dir + "/manifest.mv");
  // Higher LSN wins; the monolithic file wins ties because it is always
  // written as the superseding image (its writer deletes the manifest —
  // both present at the same LSN means that delete was lost mid-crash).
  if (mani.has_value() && (!mono.has_value() || mani->lsn > mono->lsn)) {
    RecoveredCheckpoint out;
    out.data = AssembleFromManifest(dir, *mani);
    out.manifest = std::move(mani);
    return out;
  }
  if (mono.has_value()) {
    RecoveredCheckpoint out;
    out.data = std::move(*mono);
    return out;
  }
  return std::nullopt;
}

}  // namespace mview::storage
