#ifndef MVIEW_STORAGE_RECOVERY_H_
#define MVIEW_STORAGE_RECOVERY_H_

#include <vector>

#include "db/database.h"
#include "db/transaction.h"
#include "ivm/integrity.h"
#include "ivm/view_manager.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"

namespace mview::storage {

/// Rebuilds base relations and views from a decoded checkpoint.  Tables
/// are created and filled first; views are then installed with their
/// *exact* checkpointed materialization and pending backlog via
/// `ViewManager::RestoreView` — not re-evaluated, because a deferred
/// view's checkpointed contents may legitimately lag its bases.  The
/// caller replays the WAL tail afterwards and registers assertions last
/// (see `InstallAssertions`).  Expects an empty database/manager.
void InstallCheckpoint(CheckpointData&& data, Database* db,
                       ViewManager* views);

/// Re-registers checkpointed assertions.  Must run *after* WAL replay:
/// replay drives `ViewManager::ApplyEffect` directly (replayed
/// transactions were already admitted once, so prechecking them again is
/// both wasted work and wrong under assertions added later), which
/// bypasses `IntegrityGuard` error-view maintenance — registering here
/// computes each error view once against the final recovered state.
void InstallAssertions(const std::vector<ViewDefinition>& assertions,
                       IntegrityGuard* guard);

/// Converts a decoded WAL record back into a `TransactionEffect` against
/// `db`'s catalog (schemas are looked up by relation name; throws
/// `CorruptionError` when a record names an unknown relation — the
/// DDL-forces-checkpoint policy makes that impossible for an intact log).
TransactionEffect ToEffect(const WalRecord& record, const Database& db);

}  // namespace mview::storage

#endif  // MVIEW_STORAGE_RECOVERY_H_
