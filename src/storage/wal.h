#ifndef MVIEW_STORAGE_WAL_H_
#define MVIEW_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "db/transaction.h"
#include "ivm/metrics.h"
#include "relational/tuple.h"
#include "util/error.h"

namespace mview::storage {

// The storage exception types now live in `util/error.h` (the process-wide
// fault registry throws them from arbitrary layers); these aliases keep
// every existing `storage::IoError` / `storage::CorruptionError` reference
// and catch site compiling against the same types.
using mview::CorruptionError;
using mview::IoError;

/// Fault-injection hook for crash tests: lets a test make the log
/// misbehave mid-write to prove torn-tail truncation and idempotent
/// replay.  The default policy never fails.  Once a policy injects a
/// failure the log is sticky-failed (as a crashed process would be); the
/// test then reopens the file through recovery.
///
/// This predates the process-wide `util::FaultRegistry` and remains for
/// tests that need the torn-write *prefix* semantics; `RegistryFailurePolicy`
/// below adapts it onto the registry's named fault points so one armed
/// registry drives both mechanisms.
class FailurePolicy {
 public:
  virtual ~FailurePolicy() = default;

  /// Called with the size of each physical batch about to be written.
  /// Return `size` to write it whole; return less to simulate a torn
  /// write — the prefix is written, then the append fails with `IoError`.
  virtual size_t AdmitWrite(size_t size) { return size; }

  /// Called between write and fsync; throw `IoError` to simulate power
  /// loss in the window where bytes may or may not be durable.
  virtual void BeforeSync() {}
};

/// Adapter from the legacy `FailurePolicy` hooks onto the process-wide
/// fault registry: `AdmitWrite` fires the `"wal.torn_write"` point (an
/// injected `IoError` there truncates the batch to half, simulating a torn
/// write) and `BeforeSync` fires `"wal.before_sync"` (throwing models power
/// loss in the bytes-maybe-durable window).  Stateless; one instance can
/// serve every log in the process.
class RegistryFailurePolicy : public FailurePolicy {
 public:
  size_t AdmitWrite(size_t size) override;
  void BeforeSync() override;
};

/// One decoded log record, tagged with its log sequence number.  Most
/// records are `kEffect` — the normalized net effect (Section 3) of a
/// committed transaction.  View-health transitions are logged too so a
/// quarantine survives recovery: `kQuarantine` marks a view whose
/// maintenance failed mid-commit, `kRepair` marks its subsequent heal.
struct WalRecord {
  enum class Type : uint8_t {
    kEffect = 0,
    kQuarantine = 1,
    kRepair = 2,
  };
  struct Change {
    std::string relation;
    std::vector<Tuple> inserts;
    std::vector<Tuple> deletes;
  };
  uint64_t lsn = 0;
  Type type = Type::kEffect;
  std::vector<Change> changes;  // kEffect
  std::string view;             // kQuarantine / kRepair
  std::string reason;           // kQuarantine
  bool sticky = false;          // kQuarantine
};

/// Knobs for the log; every field has a production-safe default.
struct WalOptions {
  /// How long a group-commit leader holds a batch open for more commits,
  /// measured from the first commit in the batch.  0 (the default) never
  /// delays: a batch is exactly what accumulated while the previous fsync
  /// was in flight (natural batching).  Positive windows trade commit
  /// latency for fewer, larger fsyncs.
  std::chrono::microseconds group_commit_window{0};

  /// Upper bound on commits coalesced into one fsync.  1 degenerates to
  /// per-commit fsync (the E15 baseline).
  size_t max_batch = 64;

  /// When false, records are written but never fsynced — the "no
  /// durability" benchmark baseline.  Never disable this for real data.
  bool fsync = true;

  /// When true, a file too short to hold the 16-byte header (or exactly
  /// header-sized with bad magic) is treated as a *torn header write* —
  /// re-initialized empty instead of throwing `CorruptionError`.  Set this
  /// only when an authoritative checkpoint exists: such a file cannot
  /// contain a complete record, so with a checkpoint nothing is lost, but
  /// without one the same bytes more likely mean external damage.  A file
  /// long enough to carry records whose magic is wrong is always
  /// corruption.  The caller must rebase the log above the checkpoint LSN
  /// afterwards (see `Storage::Attach`).
  bool tolerate_torn_header = false;

  FailurePolicy* failure_policy = nullptr;  // not owned; may be null
};

/// Point-in-time counters of one log instance.  Returned by `Wal::stats`
/// as a snapshot taken under the log mutex, so reading one is safe while
/// other threads commit.
struct WalStats {
  uint64_t base_lsn = 0;     // LSN of the checkpoint the log starts after
  uint64_t durable_lsn = 0;  // highest LSN guaranteed on disk
  uint64_t next_lsn = 0;     // LSN the next append will receive
  int64_t records_appended = 0;
  int64_t bytes_appended = 0;
  int64_t fsyncs = 0;
  int64_t fsync_nanos = 0;       // wall time inside write+fsync
  int64_t records_replayed = 0;  // recovered at open
  int64_t truncated_bytes = 0;   // torn tail dropped at open
  SizeHistogram batch_commits;   // commits coalesced per fsync batch
  obs::LatencyHistogram fsync_latency;  // write+fsync wall time per batch
};

/// An fsync-batched append-only log of committed transaction effects and
/// view-health transitions.
///
/// File layout: an 16-byte header (`"MVWAL002"` + little-endian u64 base
/// LSN) followed by records `[u32 payload_len][u32 crc32][payload]`.  The
/// payload carries the LSN, a record-type byte (`WalRecord::Type`), and
/// the type's body — for effects, the per-relation insert/delete tuple
/// sets in sorted order with self-describing value types, so a log can be
/// decoded without the catalog.  LSNs are assigned contiguously from
/// `base_lsn + 1`; recovery rejects gaps as corruption and truncates an
/// unreadable *tail* (short or CRC-failing trailing bytes) as a torn
/// write.
///
/// `Append` is thread-safe and returns only when the record is durable
/// (group commit): the first waiter becomes the batch leader, holds the
/// batch open per `group_commit_window`/`max_batch`, writes and fsyncs
/// once, and wakes every commit the batch covered.  Commits arriving
/// while a leader is syncing form the next batch — under load the log
/// batches naturally even with a zero window.
///
/// Sticky fsync-failure rule (fsyncgate semantics): when a batch's
/// write+fsync fails — a real `EIO` or an injected fault — the log is
/// failed permanently and **never retries the fsync**.  After an `EIO`
/// the kernel may mark the dirty pages clean, so a "successful" retry
/// would acknowledge commits whose bytes were silently dropped; the only
/// safe recovery is to reject every waiter and future append with
/// `IoError` until the directory is reopened through recovery, which
/// replays exactly the acknowledged prefix (unacknowledged records were
/// never written past the failure).
class Wal {
 public:
  using ReplayFn = std::function<void(WalRecord&&)>;

  /// Opens or creates the log at `path`.  Existing records are decoded in
  /// order and passed to `replay` (when non-null); a torn tail is
  /// truncated before the log accepts appends.  Throws `IoError` on file
  /// errors and `CorruptionError` on a bad header or mid-log damage.
  Wal(std::string path, WalOptions options, const ReplayFn& replay = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends the effect as one record and returns its LSN once durable.
  /// Thread-safe.  Throws `IoError` when the log has failed (the failure
  /// is sticky — reopen through recovery).
  uint64_t Append(const TransactionEffect& effect);

  /// Appends a view-quarantine record (the view's maintenance failed and
  /// its materialization is no longer trusted); durable before return.
  uint64_t AppendQuarantine(const std::string& view, const std::string& reason,
                            bool sticky);

  /// Appends a view-repair record (the quarantined view was healed by full
  /// re-evaluation); durable before return.
  uint64_t AppendRepair(const std::string& view);

  /// Empties the log and restarts it after `base_lsn` (call after a
  /// checkpoint covering everything up to `base_lsn` is durable).  The
  /// new log is built beside the old one and swapped in with an atomic
  /// rename, so a crash at any instant leaves either the old records or
  /// the complete new header — never a truncated file.  Must not race
  /// appends.
  void Rotate(uint64_t base_lsn);

  WalStats stats() const;
  const std::string& path() const { return path_; }

  /// True once an append has failed; the log rejects further work until
  /// reopened through recovery.
  bool failed() const;

  /// Sticky-fails the log from outside the append path.  Used when the
  /// durable state has diverged from the in-memory state in a way the log
  /// cannot represent (e.g. a post-DDL checkpoint failed): every waiter
  /// and future append gets an `IoError` until the directory is reopened
  /// through recovery.  Thread-safe; a no-op if already failed.
  void Fail(const std::string& message);

  /// Encodes one record (length+crc framing included) — exposed for the
  /// checkpoint writer and tests, which reuse the wire format.
  static std::string EncodeRecord(uint64_t lsn,
                                  const TransactionEffect& effect);

 private:
  // Shared group-commit path: assigns the LSN, frames `payload_tail` (the
  // payload bytes after the leading LSN), and blocks until durable.
  uint64_t AppendPayload(std::string payload_tail);
  void ScanExisting(const ReplayFn& replay);
  void WriteHeader(uint64_t base_lsn);
  // Writes `batch` at the current end of file and fsyncs; returns nanos
  // spent.  Called by the batch leader with `mu_` released.
  int64_t WriteAndSync(const std::string& batch);
  // Drains up to max_batch pending records as the leader; `lk` holds mu_.
  void LeadBatch(std::unique_lock<std::mutex>& lk);
  void ThrowIfFailed() const;  // requires mu_

  std::string path_;
  WalOptions options_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_batch_;    // new record buffered
  std::condition_variable cv_durable_;  // durable_lsn_ advanced / failure
  std::deque<std::string> pending_;     // encoded records awaiting fsync
  std::chrono::steady_clock::time_point batch_open_;  // first pending arrival
  bool leader_active_ = false;
  bool failed_ = false;
  std::string failure_message_;

  uint64_t base_lsn_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  WalStats stats_;
};

/// CRC-32 (IEEE, reflected) over `data` — the integrity check of WAL
/// records and checkpoint bodies.
uint32_t Crc32(const void* data, size_t size);

/// Little-endian primitives of the storage wire format, shared by the WAL
/// record codec and the checkpoint file codec.
namespace wire {

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutString(std::string* out, const std::string& s);
/// Self-describing value: a type tag byte then the payload.
void PutValue(std::string* out, const Value& v);
void PutTuple(std::string* out, const Tuple& t);

/// A bounds-checked cursor over encoded bytes; every getter throws
/// `CorruptionError` on underflow or a bad tag.
class Reader {
 public:
  Reader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::string& data) : Reader(data.data(), data.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64();
  std::string GetString();
  Value GetValue();
  Tuple GetTuple();

  /// Reads a u32 element count and validates it against the bytes left:
  /// every counted element encodes to at least one byte, so a count above
  /// `Remaining()` is impossible in a well-formed stream.  Throws
  /// `CorruptionError` instead of letting callers `reserve()` multi-GB
  /// vectors off a corrupt length prefix.
  uint32_t GetCount();

  bool AtEnd() const { return p_ == end_; }
  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  void Need(size_t n) const;
  const char* p_;
  const char* end_;
};

}  // namespace wire
}  // namespace mview::storage

#endif  // MVIEW_STORAGE_WAL_H_
