#include "storage/recovery.h"

#include <memory>

#include "ivm/snapshot.h"
#include "util/error.h"

namespace mview::storage {

void InstallCheckpoint(CheckpointData&& data, Database* db,
                       ViewManager* views) {
  MVIEW_CHECK(db != nullptr && views != nullptr, "null recovery target");
  MVIEW_CHECK(db->Names().empty() && views->ViewNames().empty(),
              "recovery requires an empty engine");

  for (auto& [name, contents] : data.tables) {
    Relation& rel = db->CreateRelation(name, contents.schema());
    contents.Scan([&](const Tuple& t) { rel.Insert(t); });
  }

  for (auto& view : data.views) {
    std::vector<std::unique_ptr<BaseDeltaLog>> pending;
    if (view.mode == MaintenanceMode::kDeferred && !view.pending.empty()) {
      MVIEW_CHECK(view.pending.size() == view.definition.bases().size(),
                  "checkpointed pending logs do not cover every base of ",
                  view.name);
      for (size_t i = 0; i < view.pending.size(); ++i) {
        auto log = std::make_unique<BaseDeltaLog>(
            view.definition.AliasedSchema(*db, i));
        for (const auto& t : view.pending[i].inserts) log->LogInsert(t);
        for (const auto& t : view.pending[i].deletes) log->LogDelete(t);
        pending.push_back(std::move(log));
      }
    }
    RestoredHealth health;
    health.quarantined = view.quarantined;
    health.reason = std::move(view.quarantine_reason);
    health.sticky = view.quarantine_sticky;
    views->RestoreView(std::move(view.definition), view.mode, view.options,
                       std::move(view.materialized), std::move(pending),
                       std::move(health));
  }
}

void InstallAssertions(const std::vector<ViewDefinition>& assertions,
                       IntegrityGuard* guard) {
  MVIEW_CHECK(guard != nullptr, "null integrity guard");
  for (const auto& def : assertions) guard->AddAssertion(def);
}

TransactionEffect ToEffect(const WalRecord& record, const Database& db) {
  TransactionEffect effect;
  for (const auto& change : record.changes) {
    const Relation* rel = db.Find(change.relation);
    if (rel == nullptr) {
      throw CorruptionError("wal replay: record " + std::to_string(record.lsn) +
                            " touches unknown relation " + change.relation);
    }
    RelationEffect& re = effect.Mutable(change.relation, rel->schema());
    for (const auto& t : change.inserts) re.inserts.Insert(t);
    for (const auto& t : change.deletes) re.deletes.Insert(t);
  }
  return effect;
}

}  // namespace mview::storage
