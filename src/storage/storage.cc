#include "storage/storage.h"

#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/prometheus.h"
#include "obs/trace.h"
#include "sql/engine.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace mview {

std::unique_ptr<Storage> Storage::Open(const std::string& path,
                                       Options options) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw storage::IoError("storage: cannot create directory " + path + ": " +
                           ec.message());
  }
  return std::unique_ptr<Storage>(new Storage(path, options));
}

std::unique_ptr<Storage> Storage::Open(const std::string& path) {
  return Open(path, Options());
}

Storage::Storage(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

Storage::~Storage() {
  // No checkpoint here — the attached engine may already be destroyed
  // (`Engine`'s destructor calls `Close`, which checkpoints while the
  // engine is still alive).  Dropping the log without a checkpoint is
  // safe: it holds every commit, so the next `Open` recovers everything.
  wal_.reset();
  engine_ = nullptr;
}

void Storage::Attach(sql::EngineCore& core) {
  MVIEW_CHECK(engine_ == nullptr, "storage already attached");

  // Recovery runs before the core is shared with any session, so the
  // friended storage surface is safe here (single-threaded by contract).
  Database& db = core.storage_database();
  ViewManager& views = core.storage_views();

  uint64_t checkpoint_lsn = 0;
  bool have_checkpoint = false;
  std::vector<ViewDefinition> assertions;
  if (auto recovered = storage::ReadCheckpointAuto(path_)) {
    have_checkpoint = true;
    checkpoint_lsn = recovered->data.lsn;
    assertions = std::move(recovered->data.assertions);
    storage::InstallCheckpoint(std::move(recovered->data), &db, &views);
    // Carried into the next incremental write so its clean segments are
    // reused; a monolithic image leaves this empty (full rewrite next).
    manifest_ = std::move(recovered->manifest);
  }

  // Dirty tracking starts now — after the checkpoint image (which the
  // segments already cover) and before WAL replay (whose effects they do
  // not): every replayed mutation marks its partitions like a live one.
  if (options_.incremental_checkpoints) {
    views.dirty_partitions().Enable(options_.checkpoint_partitions);
  }

  StorageMetrics& metrics = views.metrics().storage();
  storage::WalOptions wal_options;
  wal_options.group_commit_window = options_.group_commit_window;
  wal_options.max_batch = options_.max_batch;
  wal_options.fsync = options_.fsync;
  wal_options.failure_policy = options_.failure_policy;
  // With a checkpoint in hand, a header-sized-or-shorter WAL with a bad
  // header is a torn rotate (the checkpoint covers everything such a file
  // could have held), not corruption.
  wal_options.tolerate_torn_header = have_checkpoint;
  wal_ = std::make_unique<storage::Wal>(
      wal_path(), wal_options, [&](storage::WalRecord&& record) {
        // A crash between checkpoint write and log rotation leaves records
        // the checkpoint already covers; skipping by LSN makes replay
        // idempotent.
        if (record.lsn <= checkpoint_lsn) return;
        switch (record.type) {
          case storage::WalRecord::Type::kEffect:
            views.ApplyEffect(storage::ToEffect(record, db));
            break;
          case storage::WalRecord::Type::kQuarantine:
            // Re-enter the quarantine at the same point in the replayed
            // history; subsequent effect records then skip the view
            // exactly as the live pipeline did.
            if (views.HasView(record.view)) {
              views.Quarantine(record.view, record.reason, record.sticky);
            }
            break;
          case storage::WalRecord::Type::kRepair:
            // Re-run the heal (a full re-evaluation at this point of the
            // history is deterministic and cheap relative to recovery).
            if (views.HasView(record.view)) {
              views.Repair(record.view);
            }
            break;
        }
        ++metrics.replayed_records;
      });

  // A crash during `Rotate` (or an externally emptied log) can leave the
  // log rebased *below* the checkpoint.  Fresh appends would then be
  // assigned LSNs the replay filter above skips — acknowledged commits
  // silently lost on the next recovery.  Rebase above the checkpoint
  // before accepting any append; everything the old log held at or below
  // `checkpoint_lsn` is covered by the checkpoint.
  if (wal_->stats().durable_lsn < checkpoint_lsn) {
    wal_->Rotate(checkpoint_lsn);
  }

  // Assertions go last: replay bypassed the integrity guard (those
  // transactions were admitted when first committed), so each error view
  // is computed once against the fully recovered state.
  storage::InstallAssertions(assertions, &core.storage_guard());

  // Installed *after* replay so replayed health transitions are not
  // re-logged.  Best-effort by design: a failing append here must not
  // turn a contained view fault into a commit failure — recovery without
  // the record still recomputes the view correctly.
  views.SetHealthListener([this](const ViewHealthEvent& event) {
    if (wal_ == nullptr || wal_->failed()) return;
    try {
      if (event.kind == ViewHealthEvent::Kind::kQuarantine) {
        wal_->AppendQuarantine(event.view, event.reason, event.sticky);
      } else {
        wal_->AppendRepair(event.view);
      }
    } catch (...) {
      // Swallowed: see above.
    }
  });

  // However many rounds replay installed, a freshly opened database
  // serves snapshot readers from epoch 0 of the recovered state.
  views.PublishAsEpochZero();
  engine_ = &core;
}

void Storage::Checkpoint() { CheckpointInternal(/*force_monolithic=*/false); }

void Storage::CheckpointInternal(bool force_monolithic) {
  MVIEW_CHECK(engine_ != nullptr && wal_ != nullptr, "storage not attached");
  static const uint32_t kCheckpointName =
      obs::Tracer::Global().InternName("checkpoint");
  obs::TraceSpan span(kCheckpointName);
  Stopwatch timer;
  uint64_t lsn = wal_->stats().durable_lsn;
  ViewManager& views = engine_->storage_views();
  StorageMetrics& metrics = views.metrics().storage();
  if (options_.incremental_checkpoints && !force_monolithic) {
    storage::IncrementalStats inc;
    manifest_ = storage::WriteIncrementalCheckpoint(
        path_, lsn, engine_->database(), engine_->views(), &engine_->guard(),
        views.dirty_partitions(), options_.checkpoint_partitions,
        manifest_.has_value() ? &*manifest_ : nullptr, &inc);
    metrics.checkpoint_bytes += static_cast<int64_t>(inc.bytes_written);
    metrics.segments_written += inc.segments_written;
    metrics.partitions_skipped += inc.partitions_skipped;
  } else {
    uint64_t bytes =
        storage::WriteCheckpoint(checkpoint_path(), lsn, engine_->database(),
                                 engine_->views(), &engine_->guard());
    metrics.checkpoint_bytes += static_cast<int64_t>(bytes);
    manifest_.reset();  // the monolithic writer deleted the manifest
  }
  // Everything marked so far is covered by the image just written; marks
  // from here on belong to the next checkpoint.  Cleared before `Rotate`
  // so a rotate failure can only cause re-replay (idempotent), never a
  // carry-forward of rows the image missed.
  views.dirty_partitions().Clear();
  wal_->Rotate(lsn);
  ++metrics.checkpoints;
  metrics.checkpoint_nanos += timer.ElapsedNanos();
}

void Storage::Close() {
  if (engine_ == nullptr) return;
  if (options_.checkpoint_on_close && !wal_->failed()) Checkpoint();
  engine_->storage_views().SetHealthListener(nullptr);  // engine outlives log
  wal_.reset();
  engine_ = nullptr;
}

storage::WalStats Storage::wal_stats() const {
  return wal_ == nullptr ? storage::WalStats{} : wal_->stats();
}

void Storage::LogCommit(const TransactionEffect& effect) {
  if (wal_ == nullptr || effect.Empty()) return;
  wal_->Append(effect);
}

void Storage::OnCatalogChange() {
  if (wal_ == nullptr) return;
  try {
    // Forced monolithic: segment carry-forward assumes the catalog of the
    // previous manifest, and DDL (create/drop of tables or views) breaks
    // that assumption — a full rewrite re-anchors the incremental chain.
    CheckpointInternal(/*force_monolithic=*/true);
  } catch (...) {
    // The in-memory catalog already changed but the durable checkpoint
    // does not reflect it, and the log never carries DDL — a later commit
    // touching the new schema would be acknowledged durable yet
    // unrecoverable.  Sticky-fail the log so nothing further is
    // acknowledged until the directory is reopened through recovery,
    // which rolls back to the last durable catalog.
    wal_->Fail("checkpoint after catalog change failed; reopen to recover");
    throw;
  }
}

void Storage::SyncWalMetrics() {
  if (engine_ == nullptr || wal_ == nullptr) return;
  // The WAL's own counters are written by group-commit leader threads
  // under the log mutex; copying a locked snapshot here (on the engine
  // thread, which owns the registry) keeps `SHOW STATS` readers off the
  // leaders' plain fields.
  storage::WalStats s = wal_->stats();
  StorageMetrics& m = engine_->storage_views().metrics().storage();
  m.wal_appends = s.records_appended;
  m.wal_bytes = s.bytes_appended;
  m.wal_fsyncs = s.fsyncs;
  m.fsync_nanos = s.fsync_nanos;
  m.batch_commits = s.batch_commits;
  m.fsync_latency = s.fsync_latency;
}

std::string Storage::ExportMetricsText() {
  if (engine_ == nullptr) return "";
  // Delegate to the core so both export routes render the identical body
  // (the core takes its lock and syncs WAL, pool, and session gauges).
  return engine_->ExportMetricsText();
}

}  // namespace mview
