#ifndef MVIEW_STORAGE_STORAGE_H_
#define MVIEW_STORAGE_STORAGE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "storage/checkpoint.h"
#include "storage/wal.h"

namespace mview::sql {
class Engine;
class EngineCore;
}  // namespace mview::sql

namespace mview {

/// The single storage-facing facade: one durable database directory
/// holding a checkpoint (`checkpoint.mv`) and a write-ahead log
/// (`wal.mv`).
///
/// Lifecycle: `Open` the directory, construct an `sql::Engine` with the
/// `Storage*` (the engine attaches, which recovers — checkpoint restore,
/// WAL tail replay through the maintenance pipeline, assertion
/// re-registration), then use the engine normally; every committed
/// transaction is appended to the log (group-committed) before it is
/// applied, and every catalog change forces a checkpoint so the log only
/// ever carries DML.  `Checkpoint` (or SQL `CHECKPOINT`) snapshots state
/// and truncates the log; `Close` detaches (checkpointing first by
/// default).
class Storage {
 public:
  struct Options {
    /// Group-commit window and batch bound — see `storage::WalOptions`.
    std::chrono::microseconds group_commit_window{0};
    size_t max_batch = 64;

    /// When false, the log never fsyncs (benchmark baseline only).
    bool fsync = true;

    /// Checkpoint automatically in `Close` (skipped when the log has
    /// failed — a later `Open` recovers from the last durable state).
    bool checkpoint_on_close = true;

    /// Write partition-segment (incremental) checkpoints: `Checkpoint`
    /// rewrites only the hash partitions the dirty map reports changed
    /// since the last one — O(dirty), not O(database).  Catalog changes
    /// still force a full monolithic rewrite (the manifest carry-forward
    /// assumes a stable catalog).  When false, every checkpoint is the
    /// classic single-file rewrite.
    bool incremental_checkpoints = true;

    /// Hash-partition count for checkpoint segments and dirty tracking
    /// (whole-tuple hash; independent of any view's maintenance
    /// partitioning).  More partitions → finer dirty granularity but more
    /// files per full rewrite.
    uint32_t checkpoint_partitions = 16;

    /// Fault injection for crash tests; not owned, may be null.
    storage::FailurePolicy* failure_policy = nullptr;
  };

  /// Opens (creating if needed) the database directory.  Throws
  /// `storage::IoError` when the directory cannot be created.  Recovery
  /// happens at `Attach` time, not here.  The storage must outlive the
  /// engine it attaches to; the engine calls `Close` from its destructor,
  /// so the usual declaration order (`Storage` first, `Engine` second)
  /// checkpoints cleanly on scope exit.
  static std::unique_ptr<Storage> Open(const std::string& path,
                                       Options options);
  static std::unique_ptr<Storage> Open(const std::string& path);

  /// Closes the log file; does NOT checkpoint (the engine may already be
  /// gone).  Call `Close` — or let the engine's destructor do it — for a
  /// checkpointing shutdown.
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Binds this storage to an *empty* engine core and recovers into it:
  /// restores the latest checkpoint, replays the WAL tail through
  /// `ViewManager::ApplyEffect` (so replayed updates flow through
  /// irrelevance filtering and differential re-evaluation), truncates any
  /// torn tail, rebases the log above the checkpoint LSN when a torn
  /// rotation left it behind, re-registers assertions against the
  /// recovered state, and finally republishes the recovered view state as
  /// epoch 0 — a freshly opened database always serves snapshot readers
  /// from epoch 0 regardless of how many rounds the WAL replayed.
  /// Called by the `sql::EngineCore(Storage*)` constructor; callable
  /// directly for engines assembled by hand.  Throws
  /// `storage::CorruptionError` / `storage::IoError` on unrecoverable
  /// state.
  void Attach(sql::EngineCore& core);

  /// Snapshots the full engine state (at the current durable LSN) to the
  /// checkpoint file atomically, then truncates the log.  Requires an
  /// attached engine.
  void Checkpoint();

  /// Detaches from the engine, checkpointing first when
  /// `checkpoint_on_close` is set and the log is healthy.  Idempotent;
  /// the engine remains usable but non-durable afterwards.
  void Close();

  bool attached() const { return engine_ != nullptr; }
  const std::string& path() const { return path_; }
  std::string wal_path() const { return path_ + "/wal.mv"; }
  std::string checkpoint_path() const { return path_ + "/checkpoint.mv"; }
  std::string manifest_path() const { return path_ + "/manifest.mv"; }

  /// Counters of the underlying log (zeroes when not attached) — what SQL
  /// `SHOW WAL` prints.
  storage::WalStats wal_stats() const;

  /// Prometheus text-format (exposition 0.0.4) rendering of the attached
  /// engine's full metrics registry, WAL counters synced first.  Empty
  /// when not attached.  Suitable as a `/metrics` scrape body.
  std::string ExportMetricsText();

 private:
  friend class sql::EngineCore;

  Storage(std::string path, Options options);

  /// Appends the committed effect to the log; returns once durable.
  /// Called by the engine *before* the effect is applied anywhere (the
  /// write-ahead rule).
  void LogCommit(const TransactionEffect& effect);

  /// The shared body of `Checkpoint`/`OnCatalogChange`: incremental when
  /// configured and not forced monolithic, classic rewrite otherwise.  A
  /// successful write of either kind clears the dirty-partition map.
  void CheckpointInternal(bool force_monolithic);

  /// Called by the engine after any successful catalog change; forces a
  /// checkpoint so the log never spans DDL.  When the checkpoint fails
  /// the log is sticky-failed before the error propagates: the in-memory
  /// catalog has already diverged from the durable state, so no further
  /// commit may be acknowledged until the directory is reopened.
  void OnCatalogChange();

  /// Refreshes the WAL-owned counters in the engine's `MetricsRegistry`
  /// from a snapshot taken under the log mutex.  Called by the engine
  /// before rendering `SHOW STATS`, so metrics reads never race the
  /// group-commit leader.
  void SyncWalMetrics();

  std::string path_;
  Options options_;
  sql::EngineCore* engine_ = nullptr;
  std::unique_ptr<storage::Wal> wal_;
  /// The manifest of the last incremental checkpoint (written here or
  /// recovered at `Attach`); the next incremental write carries its clean
  /// segments forward.  Absent after a monolithic write or fresh open.
  std::optional<storage::CheckpointManifest> manifest_;
};

}  // namespace mview

#endif  // MVIEW_STORAGE_STORAGE_H_
