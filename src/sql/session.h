#ifndef MVIEW_SQL_SESSION_H_
#define MVIEW_SQL_SESSION_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "db/transaction.h"
#include "obs/session_stats.h"
#include "sql/parser.h"
#include "sql/result.h"
#include "util/status.h"

namespace mview::util {
class Cancellation;
}  // namespace mview::util

namespace mview::sql {

class EngineCore;

/// One client's connection to an `EngineCore`: the statement API that used
/// to live on `Engine`, plus this client's BEGIN…COMMIT state and its
/// per-session counters.
///
/// A session is single-client: one thread (or one network connection's
/// handler) drives it at a time.  *Different* sessions over the same core
/// are safe to drive concurrently — the core classifies each statement and
/// takes the engine lock it needs, and view SELECTs are served lock-free
/// from the published epoch snapshot.  Created by
/// `EngineCore::CreateSession`; must be destroyed before the core.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Executes one statement (a trailing ';' is allowed).  Throws
  /// `mview::Error` on syntax or semantic errors; failed assertion checks
  /// return a `kMessage` result describing the rejection instead.
  ///
  /// `cancel` (optional, may be null) is a cooperative deadline /
  /// cancellation token threaded through the engine's evaluation loops;
  /// when it expires the statement unwinds cleanly — no base, view, or
  /// backlog mutation survives — and `DeadlineExceededError` is thrown
  /// (surfaced as `Status::Kind::kDeadlineExceeded` by `TryExecute`).
  /// The token must outlive the call; the session does not keep it.
  Result Execute(const std::string& sql,
                 const util::Cancellation* cancel = nullptr);

  /// Non-throwing sibling of `Execute`: on success fills `*result` and
  /// returns an ok status; on failure leaves `*result` untouched and
  /// returns the classified error.  `result` may be null when the caller
  /// only cares about success.
  Status TryExecute(const std::string& sql, Result* result,
                    const util::Cancellation* cancel = nullptr);

  /// Executes a ';'-separated script, stopping at the first error; the
  /// thrown `Error` names the 1-based index of the failing statement.
  std::vector<Result> ExecuteScript(const std::string& sql);

  /// Non-throwing sibling of `ExecuteScript`: appends one `Result` per
  /// successfully executed statement to `*results` (may be null), and on
  /// execution failure reports the 0-based index of the failing statement
  /// via `*failed_statement` (may be null; untouched on parse errors,
  /// which reject the whole script before anything runs).
  Status TryExecuteScript(const std::string& sql,
                          std::vector<Result>* results,
                          size_t* failed_statement = nullptr);

  /// True while inside BEGIN … COMMIT/ROLLBACK.
  bool in_transaction() const { return pending_.has_value(); }

  /// This session's id (unique within its core; the default session is 1).
  uint64_t id() const { return id_; }

  /// A point-in-time copy of this session's counters (thread-safe; SHOW
  /// STATS samples live sessions through this).
  obs::SessionStats StatsSnapshot() const;

 private:
  friend class EngineCore;
  Session(EngineCore* core, uint64_t id);

  /// Runs one parsed statement through the core and records latency,
  /// error, row, and snapshot-read counters around it.
  Result ExecuteOne(const Statement& stmt,
                    const util::Cancellation* cancel = nullptr);

  EngineCore* core_;  // not owned; outlives the session
  uint64_t id_ = 0;
  std::optional<Transaction> pending_;

  mutable std::mutex stats_mu_;
  obs::SessionStats stats_;
};

}  // namespace mview::sql

#endif  // MVIEW_SQL_SESSION_H_
