#ifndef MVIEW_SQL_PARSER_H_
#define MVIEW_SQL_PARSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "predicate/condition.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace mview::sql {

/// A table reference in a FROM list: `name [AS] alias`.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

/// A parsed `SELECT` body (also the body of `CREATE VIEW … AS`).
struct SelectQuery {
  bool star = false;
  std::vector<std::string> columns;  // possibly alias-qualified
  std::vector<TableRef> from;
  Condition where = Condition::True();
};

/// When a SQL-created view is maintained (maps to `MaintenanceMode`).
enum class ViewMode { kImmediate, kDeferred, kFullReevaluation };

/// One parsed SQL statement.
///
/// Supported statements:
///
///     CREATE TABLE t (col INT64 | STRING, …);
///     DROP TABLE t;
///     CREATE [MATERIALIZED] VIEW v [DEFERRED | RECOMPUTED]
///         [PARTITIONS n] AS SELECT …;
///     DROP VIEW v;
///     CREATE ASSERTION a ON t1 [, t2 …] WHERE <error predicate>;
///     DROP ASSERTION a;
///     INSERT INTO t VALUES (…), (…);
///     DELETE FROM t [WHERE …];
///     UPDATE t SET col = literal [, …] [WHERE …];
///     SELECT * | col [, col …] FROM t [alias] [, …] [WHERE …];
///     REFRESH [VIEW] v;
///     REPAIR [VIEW] v;
///     SCRUB VIEW v [PARTITION] [REPAIR]; SCRUB ALL [REPAIR];
///     SHOW TABLES; SHOW VIEWS; SHOW ASSERTIONS; SHOW PARTITIONS;
///     SHOW STATS [JSON]; SHOW WAL;
///     TRACE ON; TRACE OFF;
///     SHOW TRACE [JSON];
///     EXPLAIN MAINTENANCE <INSERT … | DELETE … | UPDATE …>;
///     CHECKPOINT;
///     COPY t TO 'file.csv'; COPY t FROM 'file.csv';
///     BEGIN; COMMIT; ROLLBACK;
///
/// WHERE clauses use AND/OR/NOT with comparisons `x op y [± c]` / `x op
/// literal` (`op ∈ {=, ==, !=, <>, <, <=, >, >=}`); string literals are
/// single-quoted.
struct Statement {
  enum class Kind {
    kCreateTable,
    kDropTable,
    kCreateView,
    kDropView,
    kCreateAssertion,
    kDropAssertion,
    kInsert,
    kDelete,
    kUpdate,
    kSelect,
    kRefresh,
    kRepair,  // REPAIR [VIEW] v — heal a quarantined view by recompute
    kScrub,   // SCRUB VIEW v [PARTITION] [REPAIR] | SCRUB ALL [REPAIR]
    kShowTables,
    kShowViews,
    kShowAssertions,
    kShowPartitions,  // SHOW PARTITIONS — per-view partition layout/stats
    kShowStats,  // SHOW STATS [JSON] — maintenance metrics
    kShowWal,    // SHOW WAL — durable-log counters (LSNs, fsyncs, bytes)
    kTrace,      // TRACE ON | OFF — toggle the maintenance span recorder
    kShowTrace,  // SHOW TRACE [JSON] — spans / Chrome trace_event JSON
    kExplainMaintenance,  // EXPLAIN MAINTENANCE <dml> — irrelevance audit
    kCheckpoint,  // CHECKPOINT — snapshot state, truncate the log
    kCopyTo,    // COPY t TO 'file.csv'   (table or view → CSV)
    kCopyFrom,  // COPY t FROM 'file.csv' (CSV rows inserted into table)
    kBegin,
    kCommit,
    kRollback,
  };

  Kind kind = Kind::kSelect;
  std::string name;                // table / view / assertion
  std::vector<Attribute> columns;  // CREATE TABLE
  SelectQuery query;               // CREATE VIEW / SELECT
  ViewMode view_mode = ViewMode::kImmediate;
  std::vector<std::vector<Value>> rows;              // INSERT
  Condition where = Condition::True();               // DELETE/UPDATE/ASSERTION
  std::vector<std::pair<std::string, Value>> assignments;  // UPDATE SET
  std::vector<std::string> tables;                   // ASSERTION ON list
  std::string path;                                  // COPY file path
  bool json = false;             // SHOW STATS JSON / SHOW TRACE JSON
  bool trace_on = false;         // TRACE ON vs TRACE OFF
  bool repair = false;           // SCRUB … REPAIR — auto-repair drift
  bool partition = false;        // SCRUB … PARTITION — one slice per call
  uint32_t partitions = 0;       // CREATE VIEW … PARTITIONS n (0 = default)
  std::vector<Statement> inner;  // EXPLAIN MAINTENANCE wrapped DML (size 1)
};

/// Parses a `;`-separated script into statements.  Throws `Error` with an
/// offset-bearing message on syntax errors.
std::vector<Statement> Parse(const std::string& sql);

}  // namespace mview::sql

#endif  // MVIEW_SQL_PARSER_H_
