#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/error.h"

namespace mview::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::vector<Statement> ParseScript() {
    std::vector<Statement> out;
    while (!Peek().IsSymbol(";") && Peek().kind != TokenKind::kEnd) {
      out.push_back(ParseStatement());
      if (Peek().IsSymbol(";")) {
        while (Peek().IsSymbol(";")) Advance();
      } else {
        MVIEW_CHECK(Peek().kind == TokenKind::kEnd,
                    "expected ';' at offset ", Peek().offset);
      }
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool ConsumeKeyword(const char* kw) {
    if (Peek().Is(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* kw) {
    MVIEW_CHECK(ConsumeKeyword(kw), "expected ", kw, " at offset ",
                Peek().offset);
  }
  bool ConsumeSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectSymbol(const char* s) {
    MVIEW_CHECK(ConsumeSymbol(s), "expected '", s, "' at offset ",
                Peek().offset);
  }

  std::string ExpectIdentifier() {
    MVIEW_CHECK(Peek().kind == TokenKind::kIdentifier,
                "expected identifier at offset ", Peek().offset);
    return Advance().text;
  }

  // `name` or `alias.name` rendered as a single qualified string.
  std::string ParseQualifiedName() {
    std::string name = ExpectIdentifier();
    if (ConsumeSymbol(".")) name += "." + ExpectIdentifier();
    return name;
  }

  Value ParseLiteral() {
    if (Peek().kind == TokenKind::kString) return Value(Advance().text);
    bool negative = ConsumeSymbol("-");
    MVIEW_CHECK(Peek().kind == TokenKind::kInteger,
                "expected literal at offset ", Peek().offset);
    int64_t v = Advance().integer;
    return Value(negative ? -v : v);
  }

  CompareOp ParseCompareOp() {
    const Token& t = Peek();
    MVIEW_CHECK(t.kind == TokenKind::kSymbol,
                "expected comparison operator at offset ", t.offset);
    CompareOp op;
    if (t.text == "=" || t.text == "==") {
      op = CompareOp::kEq;
    } else if (t.text == "!=" || t.text == "<>") {
      op = CompareOp::kNe;
    } else if (t.text == "<") {
      op = CompareOp::kLt;
    } else if (t.text == "<=") {
      op = CompareOp::kLe;
    } else if (t.text == ">") {
      op = CompareOp::kGt;
    } else if (t.text == ">=") {
      op = CompareOp::kGe;
    } else {
      internal::ThrowError("expected comparison operator at offset ",
                           t.offset);
    }
    Advance();
    return op;
  }

  static CompareOp Reflect(CompareOp op) {
    switch (op) {
      case CompareOp::kLt:
        return CompareOp::kGt;
      case CompareOp::kLe:
        return CompareOp::kGe;
      case CompareOp::kGt:
        return CompareOp::kLt;
      case CompareOp::kGe:
        return CompareOp::kLe;
      default:
        return op;
    }
  }

  // predicate := operand op operand, where at least one side is a column.
  Condition ParsePredicate() {
    bool lhs_is_column = Peek().kind == TokenKind::kIdentifier &&
                         !Peek().Is("NOT");
    if (!lhs_is_column) {
      // literal op column  →  column Reflect(op) literal
      Value lit = ParseLiteral();
      CompareOp op = ParseCompareOp();
      std::string col = ParseQualifiedName();
      return Condition::FromAtom(
          Atom::VarConst(std::move(col), Reflect(op), std::move(lit)));
    }
    std::string lhs = ParseQualifiedName();
    CompareOp op = ParseCompareOp();
    if (Peek().kind == TokenKind::kIdentifier) {
      std::string rhs = ParseQualifiedName();
      int64_t offset = 0;
      if (ConsumeSymbol("+")) {
        MVIEW_CHECK(Peek().kind == TokenKind::kInteger,
                    "expected integer offset at offset ", Peek().offset);
        offset = Advance().integer;
      } else if (ConsumeSymbol("-")) {
        MVIEW_CHECK(Peek().kind == TokenKind::kInteger,
                    "expected integer offset at offset ", Peek().offset);
        offset = -Advance().integer;
      }
      return Condition::FromAtom(
          Atom::VarVar(std::move(lhs), op, std::move(rhs), offset));
    }
    return Condition::FromAtom(
        Atom::VarConst(std::move(lhs), op, ParseLiteral()));
  }

  Condition ParseUnaryCondition(bool negated) {
    if (ConsumeKeyword("NOT")) return ParseUnaryCondition(!negated);
    if (ConsumeSymbol("(")) {
      Condition inner = ParseOrCondition(negated);
      ExpectSymbol(")");
      return inner;
    }
    Condition pred = ParsePredicate();
    if (!negated) return pred;
    // A predicate is a single atom; negate it directly.
    const Atom& atom = pred.disjuncts().front().atoms.front();
    return Condition::FromAtom(atom.Negated());
  }

  Condition ParseAndCondition(bool negated) {
    Condition left = ParseUnaryCondition(negated);
    while (Peek().Is("AND")) {
      Advance();
      Condition right = ParseUnaryCondition(negated);
      left = negated ? left.Or(right) : left.And(right);  // De Morgan
    }
    return left;
  }

  Condition ParseOrCondition(bool negated) {
    Condition left = ParseAndCondition(negated);
    while (Peek().Is("OR")) {
      Advance();
      Condition right = ParseAndCondition(negated);
      left = negated ? left.And(right) : left.Or(right);
    }
    return left;
  }

  Condition ParseWhereClause() {
    if (!ConsumeKeyword("WHERE")) return Condition::True();
    return ParseOrCondition(/*negated=*/false);
  }

  ValueType ParseType() {
    std::string type = ExpectIdentifier();
    for (auto& c : type) c = static_cast<char>(std::toupper(c));
    if (type == "INT" || type == "INT64" || type == "INTEGER" ||
        type == "BIGINT") {
      return ValueType::kInt64;
    }
    if (type == "STRING" || type == "TEXT" || type == "VARCHAR") {
      return ValueType::kString;
    }
    internal::ThrowError("unknown column type: ", type);
  }

  SelectQuery ParseSelectQuery() {
    ExpectKeyword("SELECT");
    SelectQuery query;
    if (ConsumeSymbol("*")) {
      query.star = true;
    } else {
      query.columns.push_back(ParseQualifiedName());
      while (ConsumeSymbol(",")) query.columns.push_back(ParseQualifiedName());
    }
    ExpectKeyword("FROM");
    auto parse_ref = [&] {
      TableRef ref;
      ref.table = ExpectIdentifier();
      ref.alias = ref.table;
      ConsumeKeyword("AS");
      if (Peek().kind == TokenKind::kIdentifier && !Peek().Is("WHERE")) {
        ref.alias = ExpectIdentifier();
      }
      query.from.push_back(std::move(ref));
    };
    parse_ref();
    while (ConsumeSymbol(",")) parse_ref();
    query.where = ParseWhereClause();
    return query;
  }

  Statement ParseCreate() {
    ExpectKeyword("CREATE");
    Statement stmt;
    if (ConsumeKeyword("TABLE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      stmt.name = ExpectIdentifier();
      ExpectSymbol("(");
      do {
        Attribute attr;
        attr.name = ExpectIdentifier();
        attr.type = ParseType();
        stmt.columns.push_back(std::move(attr));
      } while (ConsumeSymbol(","));
      ExpectSymbol(")");
      return stmt;
    }
    if (ConsumeKeyword("ASSERTION")) {
      stmt.kind = Statement::Kind::kCreateAssertion;
      stmt.name = ExpectIdentifier();
      ExpectKeyword("ON");
      stmt.tables.push_back(ExpectIdentifier());
      while (ConsumeSymbol(",")) stmt.tables.push_back(ExpectIdentifier());
      ExpectKeyword("WHERE");
      stmt.where = ParseOrCondition(false);
      return stmt;
    }
    ConsumeKeyword("MATERIALIZED");
    ExpectKeyword("VIEW");
    stmt.kind = Statement::Kind::kCreateView;
    stmt.name = ExpectIdentifier();
    if (ConsumeKeyword("DEFERRED")) {
      stmt.view_mode = ViewMode::kDeferred;
    } else if (ConsumeKeyword("RECOMPUTED")) {
      stmt.view_mode = ViewMode::kFullReevaluation;
    }
    if (ConsumeKeyword("PARTITIONS")) {
      const size_t offset = Peek().offset;
      Value n = ParseLiteral();
      MVIEW_CHECK(n.type() == ValueType::kInt64 && n.AsInt64() >= 1 &&
                      n.AsInt64() <= 4096,
                  "PARTITIONS expects an integer in [1, 4096] at offset ",
                  offset);
      stmt.partitions = static_cast<uint32_t>(n.AsInt64());
    }
    ExpectKeyword("AS");
    stmt.query = ParseSelectQuery();
    return stmt;
  }

  Statement ParseStatement() {
    Statement stmt;
    const Token& t = Peek();
    if (t.Is("CREATE")) return ParseCreate();
    if (t.Is("DROP")) {
      Advance();
      if (ConsumeKeyword("TABLE")) {
        stmt.kind = Statement::Kind::kDropTable;
      } else if (ConsumeKeyword("VIEW")) {
        stmt.kind = Statement::Kind::kDropView;
      } else {
        ExpectKeyword("ASSERTION");
        stmt.kind = Statement::Kind::kDropAssertion;
      }
      stmt.name = ExpectIdentifier();
      return stmt;
    }
    if (t.Is("INSERT")) {
      Advance();
      ExpectKeyword("INTO");
      stmt.kind = Statement::Kind::kInsert;
      stmt.name = ExpectIdentifier();
      ExpectKeyword("VALUES");
      do {
        ExpectSymbol("(");
        std::vector<Value> row;
        row.push_back(ParseLiteral());
        while (ConsumeSymbol(",")) row.push_back(ParseLiteral());
        ExpectSymbol(")");
        stmt.rows.push_back(std::move(row));
      } while (ConsumeSymbol(","));
      return stmt;
    }
    if (t.Is("DELETE")) {
      Advance();
      ExpectKeyword("FROM");
      stmt.kind = Statement::Kind::kDelete;
      stmt.name = ExpectIdentifier();
      stmt.where = ParseWhereClause();
      return stmt;
    }
    if (t.Is("UPDATE")) {
      Advance();
      stmt.kind = Statement::Kind::kUpdate;
      stmt.name = ExpectIdentifier();
      ExpectKeyword("SET");
      do {
        std::string col = ExpectIdentifier();
        ExpectSymbol("=");
        stmt.assignments.emplace_back(std::move(col), ParseLiteral());
      } while (ConsumeSymbol(","));
      stmt.where = ParseWhereClause();
      return stmt;
    }
    if (t.Is("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      stmt.query = ParseSelectQuery();
      return stmt;
    }
    if (t.Is("REFRESH")) {
      Advance();
      ConsumeKeyword("VIEW");
      stmt.kind = Statement::Kind::kRefresh;
      stmt.name = ExpectIdentifier();
      return stmt;
    }
    if (t.Is("REPAIR")) {
      Advance();
      ConsumeKeyword("VIEW");
      stmt.kind = Statement::Kind::kRepair;
      stmt.name = ExpectIdentifier();
      return stmt;
    }
    if (t.Is("SCRUB")) {
      Advance();
      stmt.kind = Statement::Kind::kScrub;
      if (!ConsumeKeyword("ALL")) {  // SCRUB ALL leaves `name` empty
        ConsumeKeyword("VIEW");
        stmt.name = ExpectIdentifier();
        stmt.partition = ConsumeKeyword("PARTITION");
      }
      stmt.repair = ConsumeKeyword("REPAIR");
      return stmt;
    }
    if (t.Is("SHOW")) {
      Advance();
      if (ConsumeKeyword("TABLES")) {
        stmt.kind = Statement::Kind::kShowTables;
      } else if (ConsumeKeyword("VIEWS")) {
        stmt.kind = Statement::Kind::kShowViews;
      } else if (ConsumeKeyword("STATS")) {
        stmt.kind = Statement::Kind::kShowStats;
        stmt.json = ConsumeKeyword("JSON");
      } else if (ConsumeKeyword("TRACE")) {
        stmt.kind = Statement::Kind::kShowTrace;
        stmt.json = ConsumeKeyword("JSON");
      } else if (ConsumeKeyword("WAL")) {
        stmt.kind = Statement::Kind::kShowWal;
      } else if (ConsumeKeyword("PARTITIONS")) {
        stmt.kind = Statement::Kind::kShowPartitions;
      } else {
        ExpectKeyword("ASSERTIONS");
        stmt.kind = Statement::Kind::kShowAssertions;
      }
      return stmt;
    }
    if (t.Is("COPY")) {
      Advance();
      stmt.name = ExpectIdentifier();
      if (ConsumeKeyword("TO")) {
        stmt.kind = Statement::Kind::kCopyTo;
      } else {
        ExpectKeyword("FROM");
        stmt.kind = Statement::Kind::kCopyFrom;
      }
      MVIEW_CHECK(Peek().kind == TokenKind::kString,
                  "expected quoted file path at offset ", Peek().offset);
      stmt.path = Advance().text;
      return stmt;
    }
    if (t.Is("TRACE")) {
      Advance();
      stmt.kind = Statement::Kind::kTrace;
      if (ConsumeKeyword("ON")) {
        stmt.trace_on = true;
      } else {
        ExpectKeyword("OFF");
      }
      return stmt;
    }
    if (t.Is("EXPLAIN")) {
      Advance();
      ExpectKeyword("MAINTENANCE");
      stmt.kind = Statement::Kind::kExplainMaintenance;
      Statement dml = ParseStatement();
      MVIEW_CHECK(dml.kind == Statement::Kind::kInsert ||
                      dml.kind == Statement::Kind::kDelete ||
                      dml.kind == Statement::Kind::kUpdate,
                  "EXPLAIN MAINTENANCE expects INSERT, DELETE, or UPDATE");
      stmt.inner.push_back(std::move(dml));
      return stmt;
    }
    if (t.Is("CHECKPOINT")) {
      Advance();
      stmt.kind = Statement::Kind::kCheckpoint;
      return stmt;
    }
    if (t.Is("BEGIN")) {
      Advance();
      stmt.kind = Statement::Kind::kBegin;
      return stmt;
    }
    if (t.Is("COMMIT")) {
      Advance();
      stmt.kind = Statement::Kind::kCommit;
      return stmt;
    }
    if (t.Is("ROLLBACK")) {
      Advance();
      stmt.kind = Statement::Kind::kRollback;
      return stmt;
    }
    internal::ThrowError("unrecognized statement at offset ", t.offset, ": '",
                         t.text, "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<Statement> Parse(const std::string& sql) {
  Parser parser(Lex(sql));
  return parser.ParseScript();
}

}  // namespace mview::sql
