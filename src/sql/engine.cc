#include "sql/engine.h"

#include <algorithm>
#include <sstream>

#include <fstream>

#include "ivm/scrubber.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "ra/planner.h"
#include "relational/csv.h"
#include "sql/session.h"
#include "storage/storage.h"
#include "util/deadline.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace mview::sql {
namespace {

MaintenanceMode ToMode(ViewMode mode) {
  switch (mode) {
    case ViewMode::kImmediate:
      return MaintenanceMode::kImmediate;
    case ViewMode::kDeferred:
      return MaintenanceMode::kDeferred;
    case ViewMode::kFullReevaluation:
      return MaintenanceMode::kFullReevaluation;
  }
  return MaintenanceMode::kImmediate;
}

const char* ModeName(MaintenanceMode mode) {
  switch (mode) {
    case MaintenanceMode::kImmediate:
      return "immediate";
    case MaintenanceMode::kDeferred:
      return "deferred";
    case MaintenanceMode::kFullReevaluation:
      return "recomputed";
  }
  return "?";
}

// Resolves SELECT-body column references to the canonical attribute names
// used in the view/query's combined scheme: a column keeps its plain name
// when it is unique across the FROM list, and is qualified as
// `<alias>.<col>` otherwise.
class NameResolver {
 public:
  NameResolver(const Database& db, const std::vector<TableRef>& from) {
    MVIEW_CHECK(!from.empty(), "FROM list cannot be empty");
    for (const auto& ref : from) {
      const Relation& rel = db.Get(ref.table);
      MVIEW_CHECK(alias_index_.emplace(ref.alias, tables_.size()).second,
                  "duplicate table alias: ", ref.alias);
      tables_.push_back(&ref);
      schemas_.push_back(&rel.schema());
      for (const auto& attr : rel.schema().attributes()) {
        ++plain_count_[attr.name];
      }
    }
  }

  size_t num_tables() const { return tables_.size(); }

  // The canonical name of table `t`'s attribute `a`.
  std::string Canonical(size_t t, size_t a) const {
    const std::string& plain = schemas_[t]->attribute(a).name;
    if (plain_count_.at(plain) == 1) return plain;
    return tables_[t]->alias + "." + plain;
  }

  // Resolves a possibly-qualified reference; throws on unknown/ambiguous.
  std::string Resolve(const std::string& name) const {
    size_t dot = name.find('.');
    if (dot != std::string::npos) {
      std::string alias = name.substr(0, dot);
      std::string col = name.substr(dot + 1);
      auto it = alias_index_.find(alias);
      MVIEW_CHECK(it != alias_index_.end(), "unknown table alias: ", alias);
      auto idx = schemas_[it->second]->IndexOf(col);
      MVIEW_CHECK(idx.has_value(), "table ", alias, " has no column ", col);
      return Canonical(it->second, *idx);
    }
    auto count_it = plain_count_.find(name);
    MVIEW_CHECK(count_it != plain_count_.end(), "unknown column: ", name);
    MVIEW_CHECK(count_it->second == 1, "ambiguous column: ", name,
                " (qualify it as alias.column)");
    return name;
  }

  // Rewrites every variable of `condition` to its canonical name.
  Condition ResolveCondition(const Condition& condition) const {
    std::vector<Conjunction> disjuncts;
    for (const auto& d : condition.disjuncts()) {
      Conjunction out;
      for (const auto& atom : d.atoms) {
        Atom resolved = atom;
        resolved.lhs = Resolve(atom.lhs);
        if (resolved.rhs_var.has_value()) {
          resolved.rhs_var = Resolve(*atom.rhs_var);
        }
        out.atoms.push_back(std::move(resolved));
      }
      disjuncts.push_back(std::move(out));
    }
    return Condition(std::move(disjuncts));
  }

  // All canonical names in FROM order (for SELECT *).
  std::vector<std::string> AllColumns() const {
    std::vector<std::string> out;
    for (size_t t = 0; t < tables_.size(); ++t) {
      for (size_t a = 0; a < schemas_[t]->size(); ++a) {
        out.push_back(Canonical(t, a));
      }
    }
    return out;
  }

  // BaseRefs with canonical aliases for a ViewDefinition.
  std::vector<BaseRef> MakeBaseRefs() const {
    std::vector<BaseRef> bases;
    for (size_t t = 0; t < tables_.size(); ++t) {
      BaseRef ref{tables_[t]->table, {}};
      for (size_t a = 0; a < schemas_[t]->size(); ++a) {
        ref.aliases.push_back(Canonical(t, a));
      }
      bases.push_back(std::move(ref));
    }
    return bases;
  }

 private:
  std::vector<const TableRef*> tables_;
  std::vector<const Schema*> schemas_;
  std::map<std::string, size_t> alias_index_;
  std::map<std::string, int> plain_count_;
};

Result RowsResult(Schema schema, std::vector<std::pair<Tuple, int64_t>> rows) {
  Result result;
  result.kind = Result::Kind::kRows;
  result.schema = std::move(schema);
  result.rows = std::move(rows);
  return result;
}

Result Message(std::string text) {
  Result result;
  result.kind = Result::Kind::kMessage;
  result.message = std::move(text);
  return result;
}

Result JsonMessage(std::string json) {
  Result result = Message(std::move(json));
  result.json_message = true;
  return result;
}

// SELECT-with-WHERE-and-projection over one materialization — the body
// shared by the locked view read and the lock-free snapshot read, so both
// produce byte-identical results by construction.
Result SelectFromMaterialization(const CountedRelation& view,
                                 const SelectQuery& query) {
  const Schema& schema = view.schema();
  Condition where = query.where;
  where.Validate(schema);
  std::vector<std::string> projection = query.columns;
  if (query.star) {
    for (const auto& attr : schema.attributes()) {
      projection.push_back(attr.name);
    }
  }
  std::vector<size_t> indices;
  Schema out_schema = schema.Project(projection, &indices);
  CountedRelation out(out_schema);
  view.Scan([&](const Tuple& t, int64_t c) {
    if (where.Evaluate(schema, t)) out.Add(t.Project(indices), c);
  });
  return RowsResult(out_schema, out.ToSortedVector());
}

}  // namespace

EngineCore::EngineCore() : views_(&db_), guard_(&db_) {
  // Label the session thread in trace exports; idempotent when several
  // engines share a thread.
  obs::Tracer::Global().SetCurrentThreadName("engine");
}

EngineCore::EngineCore(Storage* storage) : EngineCore() {
  if (storage != nullptr) {
    storage->Attach(*this);
    storage_ = storage;
  }
}

EngineCore::~EngineCore() {
  if (storage_ == nullptr) return;
  try {
    storage_->Close();
  } catch (const Error&) {
    // Destructors must not throw; the log already holds every commit, so
    // the next Open recovers without the final checkpoint.
  }
}

std::unique_ptr<Session> EngineCore::CreateSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::unique_ptr<Session> session(new Session(this, next_session_id_++));
  sessions_.insert(session.get());
  ++sessions_opened_;
  return session;
}

void EngineCore::UnregisterSession(Session* session) {
  obs::SessionStats stats = session->StatsSnapshot();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(session);
  ++sessions_closed_;
  closed_session_totals_ += stats;
}

void EngineCore::SyncSessionMetrics() {
  SessionMetrics& sm = views_.metrics().sessions();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sm.opened = sessions_opened_;
  sm.closed = sessions_closed_;
  sm.active = static_cast<int64_t>(sessions_.size());
  obs::SessionStats totals = closed_session_totals_;
  for (Session* session : sessions_) totals += session->StatsSnapshot();
  sm.totals = std::move(totals);
}

EngineCore::LockClass EngineCore::Classify(const Statement& stmt,
                                           bool in_transaction) {
  using Kind = Statement::Kind;
  switch (stmt.kind) {
    case Kind::kBegin:
    case Kind::kRollback:
      // Session-local transaction state only; no shared state is touched.
      return LockClass::kNone;
    case Kind::kSelect:
    case Kind::kShowTables:
    case Kind::kShowViews:
    case Kind::kShowWal:
    case Kind::kShowAssertions:
    case Kind::kShowPartitions:
    case Kind::kShowTrace:
    case Kind::kExplainMaintenance:
    case Kind::kCopyTo:
      // Read-only against the catalog, base relations, and view state.
      return LockClass::kShared;
    case Kind::kInsert:
    case Kind::kDelete:
    case Kind::kUpdate:
    case Kind::kCopyFrom:
      // Inside BEGIN the statement only validates against the catalog and
      // stages into the session's pending transaction; the commit itself
      // happens at COMMIT under the exclusive lock.  Outside BEGIN it
      // auto-commits.
      return in_transaction ? LockClass::kShared : LockClass::kExclusive;
    default:
      // DDL, COMMIT, REFRESH/REPAIR/SCRUB, CHECKPOINT, TRACE, SHOW STATS
      // (which syncs metrics into the registry) — all mutate shared state.
      return LockClass::kExclusive;
  }
}

Result EngineCore::ExecuteParsed(const Statement& stmt,
                                 std::optional<Transaction>* pending,
                                 bool* served_from_snapshot,
                                 const util::Cancellation* cancel) {
  *served_from_snapshot = false;
  // The non-blocking read path: a SELECT over a single materialized view
  // is answered from the published epoch snapshot without touching the
  // engine lock — concurrent commits install later epochs, they never
  // mutate this one.  The snapshot (not `views_`) is the authority on
  // which views exist here, so the check itself is race-free.  The path
  // deliberately bypasses both the admission gate and the deadline poll:
  // it is wait-free and cheaper than either check, which is exactly why
  // view reads keep serving under write overload.
  if (stmt.kind == Statement::Kind::kSelect && stmt.query.from.size() == 1) {
    std::shared_ptr<const EpochSnapshot> snap = views_.Snapshot();
    if (snap->Find(stmt.query.from[0].table) != nullptr) {
      *served_from_snapshot = true;
      return ExecuteSelectFromSnapshot(*snap, stmt.query);
    }
  }
  const LockClass lock_class = Classify(stmt, pending->has_value());
  // The admission gate: statements that will take the engine lock pass
  // through their lane first, so a saturated lane sheds *before* queuing
  // on the lock.  BEGIN/ROLLBACK (kNone) touch only session state and are
  // exempt.  A shed is one fetch_add + compare — well under a millisecond
  // — and carries a retry-after hint from the lane's service-time EWMA.
  util::AdmissionController* gate =
      lock_class == LockClass::kNone ? nullptr : admission_.get();
  const util::AdmissionController::Lane lane =
      lock_class == LockClass::kExclusive
          ? util::AdmissionController::Lane::kWrite
          : util::AdmissionController::Lane::kRead;
  if (gate != nullptr && !gate->TryEnter(lane)) {
    const int64_t retry_ms = gate->RetryAfterMillis(lane);
    const bool write = lane == util::AdmissionController::Lane::kWrite;
    throw OverloadedError(std::string(write ? "write" : "read") +
                              " lane saturated (" +
                              std::to_string(write
                                                 ? admission_->options()
                                                       .write_slots
                                                 : admission_->options()
                                                       .read_slots) +
                              " in flight); retry after " +
                              std::to_string(retry_ms) + " ms",
                          retry_ms);
  }
  Stopwatch lane_timer;
  struct LaneExit {
    util::AdmissionController* gate;
    util::AdmissionController::Lane lane;
    Stopwatch* timer;
    ~LaneExit() {
      if (gate != nullptr) gate->Exit(lane, timer->ElapsedNanos());
    }
  } lane_exit{gate, lane, &lane_timer};
  try {
    // Polled before the lock so an already-expired deadline never queues
    // behind a writer; downstream poll points catch mid-statement expiry.
    if (cancel != nullptr) cancel->Check();
    switch (lock_class) {
      case LockClass::kNone:
        return ExecuteStatement(stmt, pending, cancel);
      case LockClass::kShared: {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return ExecuteStatement(stmt, pending, cancel);
      }
      case LockClass::kExclusive: {
        std::unique_lock<std::shared_mutex> lock(mu_);
        return ExecuteStatement(stmt, pending, cancel);
      }
    }
    internal::ThrowError("corrupt lock class");
  } catch (const DeadlineExceededError&) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

Result EngineCore::ExecuteSelectFromSnapshot(const EpochSnapshot& snap,
                                             const SelectQuery& query) {
  // `Read` applies the same health contract as the locked path: a
  // quarantined view throws `ViewQuarantinedError` with the same message.
  return SelectFromMaterialization(snap.Read(query.from[0].table), query);
}

ViewDefinition EngineCore::BuildDefinition(const std::string& name,
                                           const SelectQuery& query) const {
  for (const auto& ref : query.from) {
    MVIEW_CHECK(!views_.HasView(ref.table),
                "views over views are not supported: ", ref.table);
    MVIEW_CHECK(db_.Exists(ref.table), "unknown table: ", ref.table);
  }
  NameResolver resolver(db_, query.from);
  std::vector<std::string> projection;
  if (query.star) {
    projection = resolver.AllColumns();
  } else {
    for (const auto& col : query.columns) {
      projection.push_back(resolver.Resolve(col));
    }
  }
  return ViewDefinition(name, resolver.MakeBaseRefs(),
                        resolver.ResolveCondition(query.where), projection);
}

Result EngineCore::ExecuteSelect(const SelectQuery& query) {
  // SELECT over a single registered view reads the materialization.  (The
  // lock-free snapshot path normally answers these first; this branch
  // remains for in-process callers that reach the dispatcher directly.)
  if (query.from.size() == 1 && views_.HasView(query.from[0].table)) {
    return SelectFromMaterialization(views_.View(query.from[0].table), query);
  }
  // Otherwise evaluate an SPJ query over base tables.
  ViewDefinition def = BuildDefinition("__query", query);
  def.Validate(db_);
  DifferentialMaintainer evaluator(def, &db_);
  CountedRelation out = evaluator.FullEvaluate();
  return RowsResult(out.schema(), out.ToSortedVector());
}

Result EngineCore::ExecuteCreateView(const Statement& stmt) {
  ViewDefinition def = BuildDefinition(stmt.name, stmt.query);
  MaintenanceOptions options;
  if (stmt.partitions > 0) options.partition_count = stmt.partitions;
  views_.RegisterView(std::move(def), ToMode(stmt.view_mode), options);
  ViewInfo info = views_.Describe(stmt.name);
  std::string detail = std::string(ModeName(info.mode)) + ", " +
                       std::to_string(info.rows) + " rows";
  const uint32_t partitions = views_.Maintainer(stmt.name).partition_count();
  if (partitions > 1) {
    detail += ", " + std::to_string(partitions) + " partitions";
  }
  return Message("view " + stmt.name + " created (" + detail + ")");
}

Transaction EngineCore::BuildInsert(const Statement& stmt,
                                    size_t* rows) const {
  const Relation& rel = db_.Get(stmt.name);
  Transaction txn;
  for (const auto& row : stmt.rows) {
    MVIEW_CHECK(row.size() == rel.schema().size(), "INSERT into ", stmt.name,
                " expects ", rel.schema().size(), " values, got ",
                row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      MVIEW_CHECK(row[i].type() == rel.schema().attribute(i).type,
                  "INSERT into ", stmt.name, ": column ",
                  rel.schema().attribute(i).name, " expects ",
                  ValueTypeName(rel.schema().attribute(i).type));
    }
    txn.Insert(stmt.name, Tuple(row));
  }
  *rows = stmt.rows.size();
  return txn;
}

Transaction EngineCore::BuildDelete(const Statement& stmt,
                                    size_t* rows) const {
  const Relation& rel = db_.Get(stmt.name);
  stmt.where.Validate(rel.schema());
  std::vector<Tuple> matches;
  rel.Scan([&](const Tuple& t) {
    if (stmt.where.Evaluate(rel.schema(), t)) matches.push_back(t);
  });
  *rows = matches.size();
  Transaction txn;
  txn.DeleteAll(stmt.name, matches);
  return txn;
}

Transaction EngineCore::BuildUpdate(const Statement& stmt,
                                    size_t* rows) const {
  const Relation& rel = db_.Get(stmt.name);
  const Schema& schema = rel.schema();
  stmt.where.Validate(schema);
  std::vector<std::pair<size_t, Value>> sets;
  for (const auto& [col, value] : stmt.assignments) {
    size_t idx = schema.MustIndexOf(col);
    MVIEW_CHECK(value.type() == schema.attribute(idx).type, "UPDATE ",
                stmt.name, ": column ", col, " expects ",
                ValueTypeName(schema.attribute(idx).type));
    sets.emplace_back(idx, value);
  }
  Transaction txn;
  size_t changed = 0;
  rel.Scan([&](const Tuple& t) {
    if (!stmt.where.Evaluate(schema, t)) return;
    std::vector<Value> values = t.values();
    for (const auto& [idx, value] : sets) values[idx] = value;
    txn.Update(stmt.name, t, Tuple(std::move(values)));
    ++changed;
  });
  *rows = changed;
  return txn;
}

Transaction EngineCore::BuildDml(const Statement& stmt, size_t* rows) const {
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      return BuildInsert(stmt, rows);
    case Statement::Kind::kDelete:
      return BuildDelete(stmt, rows);
    case Statement::Kind::kUpdate:
      return BuildUpdate(stmt, rows);
    default:
      internal::ThrowError("not a DML statement");
  }
}

Result EngineCore::ExecuteInsert(const Statement& stmt,
                                 std::optional<Transaction>* pending,
                                 const util::Cancellation* cancel) {
  size_t n = 0;
  Transaction txn = BuildInsert(stmt, &n);
  if (pending->has_value()) {
    (*pending)->Append(txn);
    return Message(std::to_string(n) + " row(s) staged");
  }
  Result result = CommitTransaction(std::move(txn), cancel);
  if (result.kind == Result::Kind::kMessage && result.message.empty()) {
    result.message = std::to_string(n) + " row(s) inserted";
  }
  return result;
}

Result EngineCore::ExecuteDelete(const Statement& stmt,
                                 std::optional<Transaction>* pending,
                                 const util::Cancellation* cancel) {
  size_t n = 0;
  Transaction txn = BuildDelete(stmt, &n);
  if (pending->has_value()) {
    (*pending)->Append(txn);
    return Message(std::to_string(n) + " row(s) staged");
  }
  Result result = CommitTransaction(std::move(txn), cancel);
  if (result.kind == Result::Kind::kMessage && result.message.empty()) {
    result.message = std::to_string(n) + " row(s) deleted";
  }
  return result;
}

Result EngineCore::ExecuteUpdate(const Statement& stmt,
                                 std::optional<Transaction>* pending,
                                 const util::Cancellation* cancel) {
  size_t n = 0;
  Transaction txn = BuildUpdate(stmt, &n);
  if (pending->has_value()) {
    (*pending)->Append(txn);
    return Message(std::to_string(n) + " row(s) staged");
  }
  Result result = CommitTransaction(std::move(txn), cancel);
  if (result.kind == Result::Kind::kMessage && result.message.empty()) {
    result.message = std::to_string(n) + " row(s) updated";
  }
  return result;
}

Result EngineCore::ExecuteExplainMaintenance(const Statement& stmt) {
  const Statement& dml = stmt.inner.front();
  size_t n = 0;
  Transaction txn = BuildDml(dml, &n);
  // Normalize is const against the database: the would-be net effect is
  // computed and audited, nothing is applied or logged.
  TransactionEffect effect = txn.Normalize(db_);
  std::ostringstream os;
  os << "EXPLAIN MAINTENANCE: " << n << " row(s) matched, net effect "
     << effect.TotalTuples() << " tuple(s)\n";
  if (effect.Empty()) {
    os << "net effect is empty; no view would be maintained\n";
    return Message(os.str());
  }
  size_t audited = 0;
  for (const auto& name : views_.ViewNames()) {
    const DifferentialMaintainer& maintainer = views_.Maintainer(name);
    const ViewDefinition& def = maintainer.definition();
    for (size_t i = 0; i < def.bases().size(); ++i) {
      const RelationEffect* rel = effect.Find(def.bases()[i].relation);
      if (rel == nullptr) continue;
      auto audit = [&](const Relation& side, const char* tag) {
        side.Scan([&](const Tuple& t) {
          obs::IrrelevanceExplanation ex = maintainer.filter().Explain(i, t);
          os << "\nview " << name << ", base #" << i << " ("
             << def.bases()[i].relation << "), " << tag << " "
             << t.ToString() << ":\n"
             << ex.ToString();
          ++audited;
        });
      };
      audit(rel->inserts, "insert");
      audit(rel->deletes, "delete");
    }
  }
  if (audited == 0) {
    os << "no registered view references the touched relation(s)\n";
  }
  return Message(os.str());
}

Result EngineCore::CommitTransaction(Transaction txn,
                                     const util::Cancellation* cancel) {
  static const uint32_t kCommitName =
      obs::Tracer::Global().InternName("commit");
  static const uint32_t kNormalizeName =
      obs::Tracer::Global().InternName("normalize");
  static const uint32_t kPrecheckName =
      obs::Tracer::Global().InternName("precheck");
  obs::TraceSpan commit_span(kCommitName);
  if (cancel != nullptr) cancel->Check();
  // Normalized here (not via ViewManager::Apply) because the integrity
  // precheck needs the effect before the views see it; credit the phase-1
  // timer so SQL commits report normalize_nanos like direct Apply calls.
  Stopwatch timer;
  obs::TraceSpan normalize_span(kNormalizeName);
  TransactionEffect effect = txn.Normalize(db_);
  normalize_span.End();
  views_.metrics().commit().normalize_nanos += timer.ElapsedNanos();
  if (effect.Empty()) return Message("");
  obs::TraceSpan precheck_span(kPrecheckName);
  IntegrityGuard::Precheck precheck = guard_.PrecheckEffect(effect);
  precheck_span.End();
  if (!precheck.ok) {
    std::ostringstream os;
    os << "rejected: transaction violates";
    for (const auto& v : precheck.violations) {
      os << " " << v.assertion << " (" << v.witnesses.size()
         << " witness(es))";
    }
    return Message(os.str());
  }
  // Phase split for cancellation: `PrepareCommit` runs the expensive delta
  // computation with `cancel` polled at every evaluation poll point, and
  // mutates nothing observable — an expired deadline unwinds here with the
  // engine exactly as it was.  After the final poll below the commit is
  // past its point of no return: the WAL append makes it durable (the
  // write-ahead rule — durable before any in-memory state changes, so an
  // I/O failure still aborts cleanly), and `CommitPrepared` applies the
  // precomputed deltas uncancellably.
  ViewManager::PreparedCommit prepared = views_.PrepareCommit(effect, cancel);
  if (cancel != nullptr) cancel->Check();
  if (storage_ != nullptr) storage_->LogCommit(effect);
  views_.CommitPrepared(std::move(prepared), effect);
  guard_.CommitPrecheck(std::move(precheck));
  return Message("");
}

void EngineCore::NoteCatalogChange() {
  if (storage_ != nullptr) storage_->OnCatalogChange();
}

void EngineCore::SetMaintenanceParallelism(size_t workers) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  views_.SetParallelism(workers);
}

void EngineCore::SetAdmissionControl(
    util::AdmissionController::Options options) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (options.read_slots == 0 && options.write_slots == 0) {
    admission_.reset();
    return;
  }
  admission_ = std::make_unique<util::AdmissionController>(options);
}

void EngineCore::SyncAdmissionMetrics() {
  AdmissionMetrics& am = views_.metrics().admission();
  am.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  if (admission_ == nullptr) {
    am.read_slots = 0;
    am.write_slots = 0;
    return;
  }
  const util::AdmissionController::Stats stats = admission_->snapshot();
  am.read_slots = admission_->options().read_slots;
  am.write_slots = admission_->options().write_slots;
  am.read_admitted = stats.read_admitted;
  am.read_shed = stats.read_shed;
  am.read_inflight = stats.read_inflight;
  am.write_admitted = stats.write_admitted;
  am.write_shed = stats.write_shed;
  am.write_inflight = stats.write_inflight;
  am.retry_after_ms = stats.retry_after_ms;
}

void EngineCore::DumpTrace(const std::string& path) const {
  std::ofstream out(path);
  MVIEW_CHECK(out.is_open(), "cannot open for writing: ", path);
  out << obs::Tracer::Global().ExportChromeJson();
  MVIEW_CHECK(out.good(), "error writing trace to ", path);
}

std::string EngineCore::ExportMetricsText() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (storage_ != nullptr) storage_->SyncWalMetrics();
  views_.SyncPoolMetrics();
  SyncSessionMetrics();
  SyncAdmissionMetrics();
  return obs::ExportPrometheus(views_.metrics());
}

void EngineCore::EnsureTableDroppable(const std::string& name) const {
  for (const auto& view : views_.ViewNames()) {
    const ViewInfo info = views_.Describe(view);
    for (const auto& base : info.definition.bases()) {
      MVIEW_CHECK(base.relation != name, "cannot drop ", name,
                  ": referenced by view ", view);
    }
  }
  for (const auto& assertion : guard_.AssertionNames()) {
    for (const auto& base : guard_.Definition(assertion).bases()) {
      MVIEW_CHECK(base.relation != name, "cannot drop ", name,
                  ": referenced by assertion ", assertion);
    }
  }
}

Result EngineCore::ExecuteStatement(const Statement& stmt,
                                    std::optional<Transaction>* pending,
                                    const util::Cancellation* cancel) {
  using Kind = Statement::Kind;
  switch (stmt.kind) {
    case Kind::kCreateTable:
      db_.CreateRelation(stmt.name, Schema(stmt.columns));
      NoteCatalogChange();
      return Message("table " + stmt.name + " created");
    case Kind::kDropTable:
      EnsureTableDroppable(stmt.name);
      db_.DropRelation(stmt.name);
      NoteCatalogChange();
      return Message("table " + stmt.name + " dropped");
    case Kind::kCreateView: {
      Result result = ExecuteCreateView(stmt);
      NoteCatalogChange();
      return result;
    }
    case Kind::kDropView:
      views_.DropView(stmt.name);
      NoteCatalogChange();
      return Message("view " + stmt.name + " dropped");
    case Kind::kCreateAssertion: {
      std::vector<BaseRef> bases;
      for (const auto& t : stmt.tables) bases.push_back(BaseRef{t, {}});
      guard_.AddAssertion(ViewDefinition(stmt.name, bases, stmt.where));
      NoteCatalogChange();
      auto current = guard_.CurrentViolations();
      for (const auto& v : current) {
        if (v.assertion == stmt.name) {
          return Message("assertion " + stmt.name + " created (WARNING: " +
                         std::to_string(v.witnesses.size()) +
                         " pre-existing violation(s))");
        }
      }
      return Message("assertion " + stmt.name + " created");
    }
    case Kind::kDropAssertion:
      guard_.DropAssertion(stmt.name);
      NoteCatalogChange();
      return Message("assertion " + stmt.name + " dropped");
    case Kind::kInsert:
      return ExecuteInsert(stmt, pending, cancel);
    case Kind::kDelete:
      return ExecuteDelete(stmt, pending, cancel);
    case Kind::kUpdate:
      return ExecuteUpdate(stmt, pending, cancel);
    case Kind::kSelect:
      return ExecuteSelect(stmt.query);
    case Kind::kRefresh:
      views_.Refresh(stmt.name);
      return Message("view " + stmt.name + " refreshed (" +
                     std::to_string(views_.View(stmt.name).size()) +
                     " rows)");
    case Kind::kRepair: {
      const bool was_quarantined = views_.IsQuarantined(stmt.name);
      views_.Repair(stmt.name);
      return Message("view " + stmt.name +
                     (was_quarantined ? " repaired (" : " recomputed (") +
                     std::to_string(views_.View(stmt.name).size()) +
                     " rows)");
    }
    case Kind::kScrub: {
      ScrubOptions options;
      options.auto_repair = stmt.repair;
      ScrubReport report;
      if (stmt.name.empty()) {
        report = scrubber_.ScrubAll(options);
      } else if (stmt.partition) {
        report.views.push_back(
            scrubber_.ScrubViewPartition(stmt.name, options));
      } else {
        report.views.push_back(scrubber_.ScrubView(stmt.name, options));
      }
      Schema schema({{"view", ValueType::kString},
                     {"status", ValueType::kString},
                     {"missing", ValueType::kInt64},
                     {"extra", ValueType::kInt64},
                     {"action", ValueType::kString}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      for (const auto& r : report.views) {
        std::string status = !r.complete
                                 ? "partial " + std::to_string(r.slice) + "/" +
                                       std::to_string(r.slices)
                             : r.quarantined ? "quarantined"
                             : r.clean       ? "clean"
                                             : "drift";
        std::string action;
        if (r.repaired) {
          action = "repaired";
        } else if (!r.repair_error.empty()) {
          action = "repair failed: " + r.repair_error;
        }
        rows.emplace_back(Tuple({Value(r.view), Value(status),
                                 Value(r.missing), Value(r.extra),
                                 Value(action)}),
                          1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kShowTables: {
      Schema schema({{"table", ValueType::kString}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      for (const auto& name : db_.Names()) {
        rows.emplace_back(Tuple({Value(name)}), 1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kShowViews: {
      Schema schema({{"view", ValueType::kString},
                     {"mode", ValueType::kString},
                     {"rows", ValueType::kInt64},
                     {"stale", ValueType::kString},
                     {"health", ValueType::kString}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      for (const auto& name : views_.ViewNames()) {
        ViewInfo info = views_.Describe(name);
        std::string health = "ok";
        if (info.quarantined) {
          health = std::string("quarantined") +
                   (info.quarantine_sticky ? " (sticky): " : ": ") +
                   info.quarantine_reason;
        }
        rows.emplace_back(
            Tuple({Value(name), Value(ModeName(info.mode)),
                   Value(static_cast<int64_t>(info.rows)),
                   Value(info.stale ? "yes" : "no"), Value(health)}),
            1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kShowPartitions: {
      Schema schema({{"view", ValueType::kString},
                     {"partitions", ValueType::kInt64},
                     {"mode", ValueType::kString},
                     {"key", ValueType::kString},
                     {"partition_jobs", ValueType::kInt64},
                     {"partitions_pruned", ValueType::kInt64}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      for (const auto& name : views_.ViewNames()) {
        const DifferentialMaintainer& m = views_.Maintainer(name);
        const PartitionLayout& layout = m.partition_layout();
        const std::string mode = layout.count <= 1 ? "none"
                                 : layout.keyed    ? "keyed"
                                                   : "row-hash";
        // Keyed layouts co-partition on one equality class; name its
        // base-0 member (the deterministic representative the planner
        // picked).  Row-hash layouts have no key attribute.
        std::string key = "-";
        if (layout.keyed && !layout.key_attr.empty()) {
          key = m.definition()
                    .AliasedSchema(db_, 0)
                    .attribute(layout.key_attr[0])
                    .name;
        }
        const ViewMetrics* vm = views_.metrics().Find(name);
        const int64_t jobs = vm == nullptr ? 0 : vm->stats.partition_jobs;
        const int64_t pruned =
            vm == nullptr ? 0 : vm->stats.partitions_pruned;
        rows.emplace_back(
            Tuple({Value(name), Value(static_cast<int64_t>(layout.count)),
                   Value(mode), Value(key), Value(jobs), Value(pruned)}),
            1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kShowStats: {
      // Pull the WAL's counters (written behind its mutex by commit
      // leaders), the pool gauges, and the session totals into the
      // registry as one coherent snapshot first.
      if (storage_ != nullptr) storage_->SyncWalMetrics();
      views_.SyncPoolMetrics();
      SyncSessionMetrics();
      SyncAdmissionMetrics();
      if (stmt.json) return JsonMessage(views_.metrics().ToJson());
      // Long format: one (view, metric, value) row per counter, with the
      // cross-view aggregate and commit-scope timers under view "*".
      Schema schema({{"view", ValueType::kString},
                     {"metric", ValueType::kString},
                     {"value", ValueType::kInt64}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      auto emit = [&rows](const std::string& view, const char* metric,
                          int64_t value) {
        rows.emplace_back(
            Tuple({Value(view), Value(metric), Value(value)}), 1);
      };
      auto emit_view = [&emit](const std::string& view,
                               const ViewMetrics& m) {
        emit(view, "transactions", m.stats.transactions);
        emit(view, "skipped_irrelevant", m.stats.skipped_irrelevant);
        emit(view, "updates_seen", m.stats.updates_seen);
        emit(view, "updates_filtered", m.stats.updates_filtered);
        emit(view, "delta_inserts", m.stats.delta_inserts);
        emit(view, "delta_deletes", m.stats.delta_deletes);
        emit(view, "full_reevaluations", m.stats.full_reevaluations);
        emit(view, "refreshes", m.stats.refreshes);
        emit(view, "maintenance_nanos", m.stats.maintenance_nanos);
        emit(view, "cache_hits", m.stats.cache_hits);
        emit(view, "cache_misses", m.stats.cache_misses);
        emit(view, "cache_evictions", m.stats.cache_evictions);
        emit(view, "cache_bytes", m.stats.cache_bytes);
        emit(view, "filter_nanos", m.phases.filter_nanos);
        emit(view, "differential_nanos", m.phases.differential_nanos);
        emit(view, "apply_nanos", m.phases.apply_nanos);
        emit(view, "deltas_recorded", m.delta_sizes.total_samples());
        emit(view, "max_delta_size", m.delta_sizes.max_sample());
      };
      const MetricsRegistry& registry = views_.metrics();
      emit("*", "commits", registry.commit().commits);
      emit("*", "normalize_nanos", registry.commit().normalize_nanos);
      emit("*", "base_apply_nanos", registry.commit().base_apply_nanos);
      emit("*", "epochs_published", registry.commit().epochs_published);
      emit("*", "snapshot_reuses", registry.commit().snapshot_reuses);
      emit("*", "snapshot_copies", registry.commit().snapshot_copies);
      const StorageMetrics& storage = registry.storage();
      emit("*", "wal_appends", storage.wal_appends);
      emit("*", "wal_fsyncs", storage.wal_fsyncs);
      emit("*", "wal_bytes", storage.wal_bytes);
      emit("*", "fsync_nanos", storage.fsync_nanos);
      emit("*", "checkpoints", storage.checkpoints);
      emit("*", "checkpoint_nanos", storage.checkpoint_nanos);
      emit("*", "replayed_records", storage.replayed_records);
      emit("*", "max_commit_batch", storage.batch_commits.max_sample());
      const PoolMetrics& pool = registry.pool();
      emit("*", "pool_workers", pool.workers);
      emit("*", "pool_queue_depth", pool.queue_depth);
      emit("*", "pool_active_workers", pool.active_workers);
      const SessionMetrics& sessions = registry.sessions();
      emit("*", "sessions_opened", sessions.opened);
      emit("*", "sessions_closed", sessions.closed);
      emit("*", "sessions_active", sessions.active);
      emit("*", "session_statements", sessions.totals.statements);
      emit("*", "session_errors", sessions.totals.errors);
      emit("*", "session_rows_returned", sessions.totals.rows_returned);
      emit("*", "session_snapshot_reads", sessions.totals.snapshot_reads);
      const AdmissionMetrics& admission = registry.admission();
      emit("*", "admission_read_slots", admission.read_slots);
      emit("*", "admission_write_slots", admission.write_slots);
      emit("*", "admission_read_admitted", admission.read_admitted);
      emit("*", "admission_read_shed", admission.read_shed);
      emit("*", "admission_read_inflight", admission.read_inflight);
      emit("*", "admission_write_admitted", admission.write_admitted);
      emit("*", "admission_write_shed", admission.write_shed);
      emit("*", "admission_write_inflight", admission.write_inflight);
      emit("*", "admission_retry_after_ms", admission.retry_after_ms);
      emit("*", "deadline_exceeded", admission.deadline_exceeded);
      emit_view("*", registry.Aggregate());
      for (const auto& name : registry.ViewNames()) {
        emit_view(name, *registry.Find(name));
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kShowWal: {
      Schema schema({{"metric", ValueType::kString},
                     {"value", ValueType::kInt64}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      storage::WalStats stats =
          storage_ == nullptr ? storage::WalStats{} : storage_->wal_stats();
      auto emit = [&rows](const char* metric, int64_t value) {
        rows.emplace_back(Tuple({Value(metric), Value(value)}), 1);
      };
      emit("attached", storage_ != nullptr ? 1 : 0);
      emit("base_lsn", static_cast<int64_t>(stats.base_lsn));
      emit("durable_lsn", static_cast<int64_t>(stats.durable_lsn));
      emit("next_lsn", static_cast<int64_t>(stats.next_lsn));
      emit("records_appended", stats.records_appended);
      emit("bytes_appended", stats.bytes_appended);
      emit("fsyncs", stats.fsyncs);
      emit("records_replayed", stats.records_replayed);
      emit("truncated_bytes", stats.truncated_bytes);
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kTrace: {
      obs::Tracer& tracer = obs::Tracer::Global();
      if (stmt.trace_on) {
        // Each TRACE ON starts a fresh trace session: prior spans are
        // epoch-cleared so SHOW TRACE reflects only what follows.
        tracer.Clear();
        tracer.Enable();
        return Message("tracing on");
      }
      tracer.Disable();
      return Message("tracing off");
    }
    case Kind::kShowTrace: {
      if (stmt.json) {
        return JsonMessage(obs::Tracer::Global().ExportChromeJson());
      }
      Schema schema({{"span", ValueType::kString},
                     {"thread", ValueType::kString},
                     {"tid", ValueType::kInt64},
                     {"start_us", ValueType::kInt64},
                     {"dur_us", ValueType::kInt64},
                     {"arg", ValueType::kString}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
      const int64_t base = events.empty() ? 0 : events.front().start_nanos;
      for (const auto& ev : events) {
        std::string arg = ev.arg_name.empty()
                              ? ""
                              : ev.arg_name + "=" + std::to_string(ev.arg);
        rows.emplace_back(
            Tuple({Value(ev.name), Value(ev.thread_name), Value(ev.tid),
                   Value((ev.start_nanos - base) / 1000),
                   Value(ev.dur_nanos / 1000), Value(std::move(arg))}),
            1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kExplainMaintenance:
      return ExecuteExplainMaintenance(stmt);
    case Kind::kCheckpoint: {
      MVIEW_CHECK(storage_ != nullptr,
                  "CHECKPOINT requires an attached storage directory");
      storage_->Checkpoint();
      return Message("checkpoint written (LSN " +
                     std::to_string(storage_->wal_stats().base_lsn) + ")");
    }
    case Kind::kShowAssertions: {
      Schema schema({{"assertion", ValueType::kString},
                     {"holds", ValueType::kString}});
      std::vector<std::pair<Tuple, int64_t>> rows;
      auto violations = guard_.CurrentViolations();
      for (const auto& name : guard_.AssertionNames()) {
        bool violated = false;
        for (const auto& v : violations) violated |= v.assertion == name;
        rows.emplace_back(
            Tuple({Value(name), Value(violated ? "VIOLATED" : "yes")}), 1);
      }
      return RowsResult(std::move(schema), std::move(rows));
    }
    case Kind::kCopyTo: {
      std::ofstream out(stmt.path);
      MVIEW_CHECK(out.is_open(), "cannot open for writing: ", stmt.path);
      size_t rows;
      if (views_.HasView(stmt.name)) {
        const CountedRelation& view = views_.View(stmt.name);
        WriteCsv(view, out);
        rows = view.size();
      } else {
        const Relation& rel = db_.Get(stmt.name);
        WriteCsv(rel, out);
        rows = rel.size();
      }
      return Message(std::to_string(rows) + " row(s) copied to " + stmt.path);
    }
    case Kind::kCopyFrom: {
      const Relation& rel = db_.Get(stmt.name);
      std::ifstream in(stmt.path);
      MVIEW_CHECK(in.is_open(), "cannot open for reading: ", stmt.path);
      Relation loaded = ReadCsv(in);
      MVIEW_CHECK(loaded.schema() == rel.schema(), "CSV scheme ",
                  loaded.schema().ToString(), " does not match table ",
                  stmt.name, " ", rel.schema().ToString());
      size_t n = loaded.size();
      if (pending->has_value()) {
        loaded.Scan(
            [&](const Tuple& t) { (*pending)->Insert(stmt.name, t); });
        return Message(std::to_string(n) + " row(s) staged from " +
                       stmt.path);
      }
      Transaction txn;
      loaded.Scan([&](const Tuple& t) { txn.Insert(stmt.name, t); });
      Result result = CommitTransaction(std::move(txn), cancel);
      if (result.kind == Result::Kind::kMessage && result.message.empty()) {
        result.message =
            std::to_string(n) + " row(s) copied from " + stmt.path;
      }
      return result;
    }
    case Kind::kBegin:
      MVIEW_CHECK(!pending->has_value(), "already in a transaction");
      pending->emplace();
      return Message("transaction started");
    case Kind::kCommit: {
      MVIEW_CHECK(pending->has_value(), "no transaction in progress");
      Transaction txn = std::move(**pending);
      pending->reset();
      size_t ops = txn.NumOperations();
      // A deadline abort is clean by construction (nothing applied, WAL
      // untouched), so the staged transaction must survive for a retried
      // COMMIT — unlike a semantic failure, which consumes it.  Retain a
      // copy only when a token could actually expire.
      std::optional<Transaction> retained;
      if (cancel != nullptr) retained = txn;
      Result result;
      try {
        result = CommitTransaction(std::move(txn), cancel);
      } catch (const DeadlineExceededError&) {
        if (retained.has_value()) pending->emplace(std::move(*retained));
        throw;
      }
      if (result.kind == Result::Kind::kMessage && result.message.empty()) {
        result.message =
            "committed (" + std::to_string(ops) + " operation(s))";
      }
      return result;
    }
    case Kind::kRollback:
      MVIEW_CHECK(pending->has_value(), "no transaction in progress");
      pending->reset();
      return Message("rolled back");
  }
  internal::ThrowError("corrupt statement");
}

Engine::Engine() : core_(), session_(core_.CreateSession()) {}

Engine::Engine(Storage* storage)
    : core_(storage), session_(core_.CreateSession()) {}

Engine::~Engine() = default;

Result Engine::Execute(const std::string& sql) {
  return session_->Execute(sql);
}

Status Engine::TryExecute(const std::string& sql, Result* result) {
  return session_->TryExecute(sql, result);
}

std::vector<Result> Engine::ExecuteScript(const std::string& sql) {
  return session_->ExecuteScript(sql);
}

Status Engine::TryExecuteScript(const std::string& sql,
                                std::vector<Result>* results,
                                size_t* failed_statement) {
  return session_->TryExecuteScript(sql, results, failed_statement);
}

std::unique_ptr<Session> Engine::CreateSession() {
  return core_.CreateSession();
}

bool Engine::in_transaction() const { return session_->in_transaction(); }

}  // namespace mview::sql
