#ifndef MVIEW_SQL_RESULT_H_
#define MVIEW_SQL_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace mview::sql {

/// The outcome of one SQL statement: either a human-readable message or a
/// relation (schema + sorted rows with multiplicity counts).
///
/// Designed for programmatic consumers as much as for the REPL: columns can
/// be located by name, values addressed by (row, column), and the whole
/// result rendered either as an aligned text table (`ToString`) or as the
/// compact JSON document (`ToJson`) that the TCP wire protocol and
/// `SHOW STATS JSON` responses share.  (Historically this lived as
/// `sql::Engine::Result`; the engine keeps a back-compat alias.)
struct Result {
  enum class Kind { kMessage, kRows };
  Kind kind = Kind::kMessage;
  std::string message;
  /// True when `message` is itself a JSON document (`SHOW STATS JSON`,
  /// `SHOW TRACE JSON`): `ToJson` embeds it verbatim as `payload` instead
  /// of escaping it into a string, so wire consumers get real JSON.
  bool json_message = false;
  // For kRows:
  Schema schema;
  std::vector<std::pair<Tuple, int64_t>> rows;  // sorted, with counts

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return schema.size(); }

  /// Position of the named column, or nullopt when absent.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// The value at (row, col); throws `Error` when out of range or when the
  /// result is not `kRows`.
  const Value& ValueAt(size_t row, size_t col) const;

  /// The full tuple of row `row` (throws like `ValueAt`).
  const Tuple& RowAt(size_t row) const;

  /// The multiplicity of row `row` (throws like `ValueAt`).
  int64_t CountAt(size_t row) const;

  /// Row iteration: `for (const auto& [tuple, count] : result) …`.
  auto begin() const { return rows.begin(); }
  auto end() const { return rows.end(); }

  /// Pretty-prints either the message or an aligned table with a
  /// trailing multiplicity column.
  std::string ToString() const;

  /// One compact JSON object — the canonical machine encoding, also the
  /// body of a server wire response:
  ///   {"kind":"message","message":"…"}
  ///   {"kind":"json","payload":{…}}
  ///   {"kind":"rows","columns":["a","b"],"types":["int64","string"],
  ///    "rows":[[1,"x"],[2,"y"]],"counts":[1,3]}
  std::string ToJson() const;

  /// Appends the `ToJson` fields without the surrounding braces, so the
  /// wire encoder can splice them into a response envelope.
  void AppendJsonBody(std::string* out) const;
};

}  // namespace mview::sql

#endif  // MVIEW_SQL_RESULT_H_
