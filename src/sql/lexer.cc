#include "sql/lexer.h"

#include <cctype>

#include "util/error.h"

namespace mview::sql {

namespace {

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

}  // namespace

bool Token::Is(const char* upper_keyword) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, upper_keyword);
}

bool Token::IsSymbol(const char* symbol) const {
  return kind == TokenKind::kSymbol && text == symbol;
}

std::vector<Token> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  auto push = [&tokens](TokenKind kind, std::string text, int64_t integer,
                        size_t offset) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.integer = integer;
    token.offset = offset;
    tokens.push_back(std::move(token));
  };
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdentifier, sql.substr(offset, i - offset), 0, offset);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      std::string text = sql.substr(offset, i - offset);
      int64_t integer = std::stoll(text);
      push(TokenKind::kInteger, std::move(text), integer, offset);
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // doubled quote escape
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      MVIEW_CHECK(closed, "unterminated string literal at offset ", offset);
      push(TokenKind::kString, std::move(value), 0, offset);
      continue;
    }
    // Multi-character operators first.
    auto starts_with = [&](const char* s) {
      size_t len = std::char_traits<char>::length(s);
      return sql.compare(i, len, s) == 0;
    };
    const char* two_char[] = {"==", "!=", "<>", "<=", ">="};
    bool matched = false;
    for (const char* op : two_char) {
      if (starts_with(op)) {
        push(TokenKind::kSymbol, op, 0, offset);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    const std::string singles = "(),;.*=<>+-";
    if (singles.find(c) != std::string::npos) {
      push(TokenKind::kSymbol, std::string(1, c), 0, offset);
      ++i;
      continue;
    }
    internal::ThrowError("unexpected character '", std::string(1, c),
                         "' at offset ", i);
  }
  push(TokenKind::kEnd, "", 0, n);
  return tokens;
}

}  // namespace mview::sql
