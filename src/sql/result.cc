#include "sql/result.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace mview::sql {

std::optional<size_t> Result::ColumnIndex(const std::string& name) const {
  return schema.IndexOf(name);
}

const Value& Result::ValueAt(size_t row, size_t col) const {
  MVIEW_CHECK(kind == Kind::kRows, "ValueAt on a message result");
  MVIEW_CHECK(row < rows.size(), "row ", row, " out of range (", rows.size(),
              " rows)");
  MVIEW_CHECK(col < schema.size(), "column ", col, " out of range (",
              schema.size(), " columns)");
  return rows[row].first.at(col);
}

const Tuple& Result::RowAt(size_t row) const {
  MVIEW_CHECK(kind == Kind::kRows, "RowAt on a message result");
  MVIEW_CHECK(row < rows.size(), "row ", row, " out of range (", rows.size(),
              " rows)");
  return rows[row].first;
}

int64_t Result::CountAt(size_t row) const {
  MVIEW_CHECK(kind == Kind::kRows, "CountAt on a message result");
  MVIEW_CHECK(row < rows.size(), "row ", row, " out of range (", rows.size(),
              " rows)");
  return rows[row].second;
}

std::string Result::ToString() const {
  if (kind == Kind::kMessage) return message + "\n";
  std::vector<std::string> headers;
  headers.reserve(schema.size());
  for (const auto& attr : schema.attributes()) headers.push_back(attr.name);
  std::vector<size_t> widths;
  for (const auto& h : headers) widths.push_back(h.size());
  std::vector<std::vector<std::string>> cells;
  bool any_dup = false;
  for (const auto& [tuple, count] : rows) {
    std::vector<std::string> row;
    for (size_t i = 0; i < tuple.size(); ++i) {
      const Value& v = tuple.at(i);
      row.push_back(v.type() == ValueType::kString ? v.AsString()
                                                   : v.ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    if (count != 1) any_dup = true;
    cells.push_back(std::move(row));
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i > 0 ? " | " : "") << row[i];
      if (i + 1 < row.size() || any_dup) {
        os << std::string(widths[i] - row[i].size(), ' ');
      }
    }
  };
  emit(headers);
  if (any_dup) os << " | #";
  os << "\n";
  size_t total = any_dup ? 4 : 0;
  for (size_t w : widths) total += w + 3;
  os << std::string(total > 3 ? total - 3 : total, '-') << "\n";
  for (size_t r = 0; r < cells.size(); ++r) {
    emit(cells[r]);
    if (any_dup) os << " | " << rows[r].second;
    os << "\n";
  }
  os << "(" << cells.size() << " row" << (cells.size() == 1 ? "" : "s")
     << ")\n";
  return os.str();
}

void Result::AppendJsonBody(std::string* out) const {
  if (kind == Kind::kMessage) {
    if (json_message) {
      *out += "\"kind\":\"json\",\"payload\":";
      *out += message.empty() ? "null" : message;
    } else {
      *out += "\"kind\":\"message\",\"message\":";
      *out += util::JsonQuote(message);
    }
    return;
  }
  *out += "\"kind\":\"rows\",\"columns\":[";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) *out += ',';
    *out += util::JsonQuote(schema.attribute(i).name);
  }
  *out += "],\"types\":[";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) *out += ',';
    *out += util::JsonQuote(ValueTypeName(schema.attribute(i).type));
  }
  *out += "],\"rows\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) *out += ',';
    *out += '[';
    const Tuple& tuple = rows[r].first;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) *out += ',';
      const Value& v = tuple.at(i);
      if (v.type() == ValueType::kString) {
        *out += util::JsonQuote(v.AsString());
      } else {
        *out += v.ToString();
      }
    }
    *out += ']';
  }
  *out += "],\"counts\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) *out += ',';
    *out += std::to_string(rows[r].second);
  }
  *out += ']';
}

std::string Result::ToJson() const {
  std::string out;
  out += '{';
  AppendJsonBody(&out);
  out += '}';
  return out;
}

}  // namespace mview::sql
