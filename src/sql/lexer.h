#ifndef MVIEW_SQL_LEXER_H_
#define MVIEW_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mview::sql {

/// Token kinds produced by the SQL lexer.
enum class TokenKind : uint8_t {
  kIdentifier,  // bare or keyword (parser decides case-insensitively)
  kInteger,     // [-]digits (sign handled by parser)
  kString,      // '...' with '' escaping
  kSymbol,      // punctuation / operators, text holds the exact lexeme
  kEnd,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t integer = 0;
  size_t offset = 0;

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const char* upper_keyword) const;

  /// True for an exact symbol match.
  bool IsSymbol(const char* symbol) const;
};

/// Tokenizes `sql`.  Supported symbols: `( ) , ; . * = == != <> <= >= < >`.
/// `--` starts a comment running to end of line.  Throws `Error` on
/// unterminated strings or unexpected characters.
std::vector<Token> Lex(const std::string& sql);

}  // namespace mview::sql

#endif  // MVIEW_SQL_LEXER_H_
