#ifndef MVIEW_SQL_ENGINE_H_
#define MVIEW_SQL_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "ivm/integrity.h"
#include "ivm/view_manager.h"
#include "sql/parser.h"

namespace mview {
class Storage;
}  // namespace mview

namespace mview::sql {

/// A self-contained SQL session: a `Database`, a `ViewManager` keeping SQL-
/// created materialized views consistent, and an `IntegrityGuard` enforcing
/// SQL-created assertions.
///
/// This is the substrate the paper presumes around its algorithms — a
/// relational system in which views are defined declaratively and updated
/// transactions flow through the maintenance machinery.  DML statements
/// outside BEGIN/COMMIT auto-commit; inside an explicit transaction they
/// accumulate and commit atomically (with the net-effect semantics of
/// Section 3), and ROLLBACK discards them.  A commit is admitted only when
/// it violates no assertion; on success every immediate view is brought up
/// to date differentially.
class Engine {
 public:
  Engine();

  /// A durable session: attaches `storage` (not owned; may be null for an
  /// in-memory engine, must outlive this engine otherwise), which recovers
  /// the directory's checkpoint and WAL tail into this engine before the
  /// constructor returns.  Afterwards every commit is logged durably
  /// before it is applied, and catalog changes force checkpoints.
  explicit Engine(Storage* storage);

  /// Closes the attached storage (checkpointing per its options) while
  /// the engine state is still alive to snapshot.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The outcome of one statement.
  struct Result {
    enum class Kind { kMessage, kRows };
    Kind kind = Kind::kMessage;
    std::string message;
    // For kRows:
    Schema schema;
    std::vector<std::pair<Tuple, int64_t>> rows;  // sorted, with counts

    /// Pretty-prints either the message or an aligned table with a
    /// trailing multiplicity column.
    std::string ToString() const;
  };

  /// The outcome of a non-throwing execution (`TryExecute` /
  /// `TryExecuteScript`): success, or a classified failure with the error
  /// text.  Lets drivers and REPLs branch on failure instead of using
  /// exceptions for control flow.
  struct Status {
    enum class Kind {
      kOk,
      kParseError,      // lexer/parser rejected the text
      kExecutionError,  // a statement failed (semantic error, unknown
                        // name, type mismatch, …)
      kIoError,         // the durable log or checkpoint hit an I/O
                        // failure; the commit did not happen
      kCorruption,      // persistent state failed validation (bad magic,
                        // CRC mismatch, undecodable body)
      kViewQuarantined,  // the statement read a quarantined view; run
                         // REPAIR VIEW to heal it first
      kInternal,        // an unclassified exception (std::bad_alloc, a
                        // library error, …) — the engine caught it rather
                        // than letting it escape a noexcept boundary
    };
    bool ok = true;
    Kind kind = Kind::kOk;
    std::string message;

    static Status Ok() { return Status{}; }
    static Status ParseError(std::string message);
    static Status ExecutionError(std::string message);
    static Status IoError(std::string message);
    static Status Corruption(std::string message);
    static Status ViewQuarantined(std::string message);
    static Status Internal(std::string message);
  };

  /// Executes one statement (a trailing ';' is allowed).  Throws
  /// `mview::Error` on syntax or semantic errors; failed assertion checks
  /// return a `kMessage` result describing the rejection instead.
  Result Execute(const std::string& sql);

  /// Non-throwing sibling of `Execute`: on success fills `*result` and
  /// returns an ok status; on failure leaves `*result` untouched and
  /// returns the classified error.  `result` may be null when the caller
  /// only cares about success.
  Status TryExecute(const std::string& sql, Result* result);

  /// Executes a ';'-separated script, stopping at the first error; the
  /// thrown `Error` names the 1-based index of the failing statement.
  std::vector<Result> ExecuteScript(const std::string& sql);

  /// Non-throwing sibling of `ExecuteScript`: appends one `Result` per
  /// successfully executed statement to `*results` (may be null), and on
  /// execution failure reports the 0-based index of the failing statement
  /// via `*failed_statement` (may be null; untouched on parse errors,
  /// which reject the whole script before anything runs).
  Status TryExecuteScript(const std::string& sql,
                          std::vector<Result>* results,
                          size_t* failed_statement = nullptr);

  /// Writes the current trace snapshot (Chrome `trace_event` JSON, the
  /// `SHOW TRACE JSON` payload) to `path` — loadable in chrome://tracing
  /// and Perfetto.  Throws `Error` when the file cannot be opened.
  void DumpTrace(const std::string& path) const;

  /// Prometheus text-format (exposition 0.0.4) rendering of the full
  /// metrics registry, WAL and pool gauges synced first.  Suitable as a
  /// `/metrics` scrape body; works with or without attached storage.
  std::string ExportMetricsText();

  Database& database() { return db_; }
  ViewManager& views() { return views_; }
  IntegrityGuard& guard() { return guard_; }

  /// The attached storage, or null for an in-memory engine.
  Storage* storage() { return storage_; }

  /// True while inside BEGIN … COMMIT/ROLLBACK.
  bool in_transaction() const { return pending_.has_value(); }

 private:
  Result ExecuteStatement(const Statement& stmt);
  Result ExecuteSelect(const SelectQuery& query);
  Result ExecuteCreateView(const Statement& stmt);
  Result ExecuteInsert(const Statement& stmt);
  Result ExecuteDelete(const Statement& stmt);
  Result ExecuteUpdate(const Statement& stmt);
  Result ExecuteExplainMaintenance(const Statement& stmt);
  Result CommitTransaction(Transaction txn);

  // Validate a DML statement against the catalog and return the
  // transaction it would commit (affected-row count via `rows`), applying
  // nothing — shared by the execution paths and EXPLAIN MAINTENANCE.
  Transaction BuildInsert(const Statement& stmt, size_t* rows) const;
  Transaction BuildDelete(const Statement& stmt, size_t* rows) const;
  Transaction BuildUpdate(const Statement& stmt, size_t* rows) const;
  Transaction BuildDml(const Statement& stmt, size_t* rows) const;
  void EnsureTableDroppable(const std::string& name) const;
  // Called after every successful DDL statement: with storage attached,
  // forces a checkpoint so the WAL only ever carries DML.
  void NoteCatalogChange();

  // Builds a ViewDefinition (canonical attribute naming, resolved
  // condition and projection) from a SELECT body over base tables.
  ViewDefinition BuildDefinition(const std::string& name,
                                 const SelectQuery& query) const;

  Database db_;
  ViewManager views_;
  IntegrityGuard guard_;
  Storage* storage_ = nullptr;  // not owned
  std::optional<Transaction> pending_;
};

}  // namespace mview::sql

#endif  // MVIEW_SQL_ENGINE_H_
