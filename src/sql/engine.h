#ifndef MVIEW_SQL_ENGINE_H_
#define MVIEW_SQL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "ivm/integrity.h"
#include "ivm/scrubber.h"
#include "ivm/view_manager.h"
#include "obs/session_stats.h"
#include "sql/parser.h"
#include "sql/result.h"
#include "util/admission.h"
#include "util/status.h"

namespace mview::util {
class Cancellation;
}  // namespace mview::util

namespace mview {
class Storage;
}  // namespace mview

namespace mview::sql {

class Session;

/// The shared, thread-safe heart of a SQL engine: a `Database`, a
/// `ViewManager` keeping SQL-created materialized views consistent, and an
/// `IntegrityGuard` enforcing SQL-created assertions.
///
/// This is the substrate the paper presumes around its algorithms — a
/// relational system in which views are defined declaratively and updated
/// transactions flow through the maintenance machinery.  Clients do not
/// talk to the core directly; they execute SQL through `Session` objects
/// (`CreateSession`), each carrying its own BEGIN…COMMIT state.
///
/// Concurrency model (see DESIGN.md, "Sessions, epochs, and the server"):
///
///  - A SELECT over a single materialized view never takes the engine lock
///    at all: it reads the immutable `EpochSnapshot` most recently
///    published by the commit pipeline (one atomic load), so view reads
///    are wait-free with respect to writers.
///  - Read-only statements over base tables (ad-hoc SELECT, SHOW …,
///    EXPLAIN MAINTENANCE, COPY TO) share a reader-writer lock, as does
///    DML *staging* inside an explicit transaction (it only validates
///    against the catalog and appends to the session's pending
///    transaction).
///  - Everything that mutates shared state — commits, DDL, REFRESH/REPAIR/
///    SCRUB, CHECKPOINT, SHOW STATS (which syncs metrics) — takes the lock
///    exclusively and serializes through the existing commit path.
///  - BEGIN and ROLLBACK touch only session-local state and take no lock.
class EngineCore {
 public:
  EngineCore();

  /// A durable core: attaches `storage` (not owned; may be null for an
  /// in-memory engine, must outlive this core otherwise), which recovers
  /// the directory's checkpoint and WAL tail into this core — and
  /// republishes the recovered state as epoch 0 — before the constructor
  /// returns.  Afterwards every commit is logged durably before it is
  /// applied, and catalog changes force checkpoints.
  explicit EngineCore(Storage* storage);

  /// Closes the attached storage (checkpointing per its options) while the
  /// core's state is still alive to snapshot.  Every `Session` must have
  /// been destroyed first.
  ~EngineCore();

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  /// Opens a new client session.  Sessions are cheap, independently own
  /// their transaction state, and must not outlive the core.  Thread-safe.
  std::unique_ptr<Session> CreateSession();

  /// Executes one parsed statement on behalf of a session whose pending
  /// transaction is `*pending`, taking whatever lock the statement class
  /// requires (see the class comment).  Sets `*served_from_snapshot` when
  /// the statement was a view SELECT answered lock-free from the published
  /// epoch.  Throws like the former `Engine::Execute`.
  ///
  /// `cancel` (may be null) is polled before the engine lock is taken and
  /// at every evaluation poll point downstream; an expired token unwinds
  /// the statement with `DeadlineExceededError` before anything observable
  /// mutates.  When admission control is configured
  /// (`SetAdmissionControl`), statements that need the engine lock pass
  /// through the lane gate first: a saturated lane sheds the statement
  /// immediately with `OverloadedError` carrying a retry-after hint.  The
  /// snapshot fast path bypasses both — published-epoch reads stay
  /// wait-free even under overload.
  Result ExecuteParsed(const Statement& stmt,
                       std::optional<Transaction>* pending,
                       bool* served_from_snapshot,
                       const util::Cancellation* cancel = nullptr);

  /// The latest published epoch of every materialized view — one atomic
  /// load, callable from any thread concurrently with commits.
  std::shared_ptr<const EpochSnapshot> Snapshot() const {
    return views_.Snapshot();
  }

  /// Const inspection of the engine's state.  These return references into
  /// live structures, so they are only meaningful when no other thread is
  /// writing (tests, tools, single-threaded embedding); concurrent
  /// programs read views through `Snapshot()` and everything else through
  /// SQL.
  const Database& database() const { return db_; }
  const ViewManager& views() const { return views_; }
  const IntegrityGuard& guard() const { return guard_; }

  /// Sets the number of maintenance worker threads the commit pipeline
  /// fans view maintenance over (0 = serial).  A startup/configuration
  /// knob: takes the engine lock exclusively, so it is safe against
  /// concurrent statements, but resizing the pool mid-load stalls commits
  /// while workers drain.
  void SetMaintenanceParallelism(size_t workers);

  /// Configures admission control (overload shedding).  Lane budgets of 0
  /// mean unlimited (the default: no gating, no overhead beyond a null
  /// check).  A startup/configuration knob like
  /// `SetMaintenanceParallelism`: call before the core is shared, not
  /// mid-load.
  void SetAdmissionControl(util::AdmissionController::Options options);

  /// The admission controller, or null when admission control is off.
  const util::AdmissionController* admission() const {
    return admission_.get();
  }

  /// TEST-ONLY mutable controller access (e.g. to occupy a lane slot and
  /// force a deterministic shed); same contract as `mutable_database`.
  util::AdmissionController* mutable_admission() { return admission_.get(); }

  /// Mutable escape hatches for TESTS ONLY (drift injection, direct view
  /// registration, scrubber construction).  They bypass the engine lock
  /// entirely: never call them while another thread is executing
  /// statements.  Production code mutates state through SQL; the storage
  /// facade uses its own friended surface below.
  Database& mutable_database() { return db_; }
  ViewManager& mutable_views() { return views_; }
  IntegrityGuard& mutable_guard() { return guard_; }

  /// The attached storage, or null for an in-memory core.
  Storage* storage() { return storage_; }

  /// Writes the current trace snapshot (Chrome `trace_event` JSON, the
  /// `SHOW TRACE JSON` payload) to `path` — loadable in chrome://tracing
  /// and Perfetto.  Throws `Error` when the file cannot be opened.
  void DumpTrace(const std::string& path) const;

  /// Prometheus text-format (exposition 0.0.4) rendering of the full
  /// metrics registry, WAL/pool/session gauges synced first (takes the
  /// lock exclusively).  Suitable as a `/metrics` scrape body.
  std::string ExportMetricsText();

 private:
  friend class Session;
  friend class ::mview::Storage;

  /// Narrow internal surface for the storage facade only: recovery install
  /// at `Attach` (which runs before the core is shared, single-threaded by
  /// contract), health-listener wiring at `Close`, and WAL/checkpoint
  /// metrics sync.  Private and friended so production code outside
  /// storage/ cannot grow new mutation paths; tests use the public
  /// `mutable_*` hatches above.
  Database& storage_database() { return db_; }
  ViewManager& storage_views() { return views_; }
  IntegrityGuard& storage_guard() { return guard_; }

  /// How much of the engine a statement needs (see the class comment).
  enum class LockClass { kNone, kShared, kExclusive };
  static LockClass Classify(const Statement& stmt, bool in_transaction);

  /// The statement dispatcher; the caller holds the lock `Classify`
  /// demanded.  `cancel` may be null; it reaches the maintenance poll
  /// points through `CommitTransaction`.
  Result ExecuteStatement(const Statement& stmt,
                          std::optional<Transaction>* pending,
                          const util::Cancellation* cancel);
  Result ExecuteSelect(const SelectQuery& query);
  /// The lock-free fast path: serves `query` (single-FROM over a view
  /// present in `snap`) from the epoch's immutable buffer.
  Result ExecuteSelectFromSnapshot(const EpochSnapshot& snap,
                                   const SelectQuery& query);
  Result ExecuteCreateView(const Statement& stmt);
  Result ExecuteInsert(const Statement& stmt,
                       std::optional<Transaction>* pending,
                       const util::Cancellation* cancel);
  Result ExecuteDelete(const Statement& stmt,
                       std::optional<Transaction>* pending,
                       const util::Cancellation* cancel);
  Result ExecuteUpdate(const Statement& stmt,
                       std::optional<Transaction>* pending,
                       const util::Cancellation* cancel);
  Result ExecuteExplainMaintenance(const Statement& stmt);
  Result CommitTransaction(Transaction txn, const util::Cancellation* cancel);

  // Validate a DML statement against the catalog and return the
  // transaction it would commit (affected-row count via `rows`), applying
  // nothing — shared by the execution paths and EXPLAIN MAINTENANCE.
  Transaction BuildInsert(const Statement& stmt, size_t* rows) const;
  Transaction BuildDelete(const Statement& stmt, size_t* rows) const;
  Transaction BuildUpdate(const Statement& stmt, size_t* rows) const;
  Transaction BuildDml(const Statement& stmt, size_t* rows) const;
  void EnsureTableDroppable(const std::string& name) const;
  // Called after every successful DDL statement: with storage attached,
  // forces a checkpoint so the WAL only ever carries DML.
  void NoteCatalogChange();

  // Builds a ViewDefinition (canonical attribute naming, resolved
  // condition and projection) from a SELECT body over base tables.
  ViewDefinition BuildDefinition(const std::string& name,
                                 const SelectQuery& query) const;

  // Session registry (guarded by `sessions_mu_`, which nests inside the
  // engine lock and outside the sessions' own stats mutexes).
  void UnregisterSession(Session* session);
  /// Folds closed-session totals plus a sample of every live session into
  /// `views_.metrics().sessions()`.  Caller holds the exclusive lock.
  void SyncSessionMetrics();
  /// Copies the admission controller's counters (and the deadline-abort
  /// counter) into `views_.metrics().admission()`.  Caller holds the
  /// exclusive lock.
  void SyncAdmissionMetrics();

  Database db_;
  ViewManager views_;
  IntegrityGuard guard_;
  Storage* storage_ = nullptr;  // not owned
  // Persistent so `SCRUB VIEW … PARTITION` cursors survive across
  // statements (each call verifies one slice); whole-view scrubs share it.
  // Guarded by the exclusive engine lock like every other mutation.
  Scrubber scrubber_{&views_, &views_.metrics().scrub()};

  // The engine lock: shared by read-only statements, exclusive for
  // anything that mutates shared state.  View SELECTs bypass it entirely.
  mutable std::shared_mutex mu_;

  // Admission control (null = off).  Set once at startup by
  // `SetAdmissionControl`; the controller itself is internally atomic, so
  // the gate runs before any engine lock is taken.
  std::unique_ptr<util::AdmissionController> admission_;
  // Statements unwound by an expired deadline (any lane, any phase).
  std::atomic<int64_t> deadline_exceeded_{0};

  mutable std::mutex sessions_mu_;
  std::set<Session*> sessions_;   // live sessions
  uint64_t next_session_id_ = 1;
  int64_t sessions_opened_ = 0;
  int64_t sessions_closed_ = 0;
  obs::SessionStats closed_session_totals_;
};

/// The embedded façade most callers use: an `EngineCore` plus one default
/// `Session`, preserving the historical single-object API (`Execute` on
/// the engine itself).  Additional concurrent clients call
/// `CreateSession`; the façade's own statement methods are *not*
/// thread-safe with each other (they share the default session), but they
/// are safe against statements on other sessions.
class Engine {
 public:
  /// Back-compat alias: this type was nested here before it was promoted
  /// to `sql::Result` (sql/result.h); `Engine::Result` keeps the old
  /// spelling working.  (The matching `Engine::Status` alias is retired —
  /// write `mview::Status` from util/status.h.)
  using Result = ::mview::sql::Result;

  Engine();

  /// A durable engine; see `EngineCore::EngineCore(Storage*)`.
  explicit Engine(Storage* storage);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one statement (a trailing ';' is allowed) on the default
  /// session.  Throws `mview::Error` on syntax or semantic errors; failed
  /// assertion checks return a `kMessage` result describing the rejection
  /// instead.
  Result Execute(const std::string& sql);

  /// Non-throwing sibling of `Execute`: on success fills `*result` and
  /// returns an ok status; on failure leaves `*result` untouched and
  /// returns the classified error.  `result` may be null when the caller
  /// only cares about success.
  Status TryExecute(const std::string& sql, Result* result);

  /// Executes a ';'-separated script, stopping at the first error; the
  /// thrown `Error` names the 1-based index of the failing statement.
  std::vector<Result> ExecuteScript(const std::string& sql);

  /// Non-throwing sibling of `ExecuteScript`: appends one `Result` per
  /// successfully executed statement to `*results` (may be null), and on
  /// execution failure reports the 0-based index of the failing statement
  /// via `*failed_statement` (may be null; untouched on parse errors,
  /// which reject the whole script before anything runs).
  Status TryExecuteScript(const std::string& sql,
                          std::vector<Result>* results,
                          size_t* failed_statement = nullptr);

  /// Opens an additional, independent session over this engine's core.
  /// The session must be destroyed before the engine.
  std::unique_ptr<Session> CreateSession();

  /// The shared core, for callers (the server) that manage their own
  /// sessions.
  EngineCore& core() { return core_; }
  const EngineCore& core() const { return core_; }

  /// The latest published view epoch; see `EngineCore::Snapshot`.
  std::shared_ptr<const EpochSnapshot> Snapshot() const {
    return core_.Snapshot();
  }

  /// See `EngineCore::DumpTrace` / `ExportMetricsText`.
  void DumpTrace(const std::string& path) const { core_.DumpTrace(path); }
  std::string ExportMetricsText() { return core_.ExportMetricsText(); }

  /// Const inspection; see `EngineCore::database()` for the contract.
  /// (These were mutable before sessions existed — mutating callers must
  /// now say `mutable_…` and accept the single-threaded contract.)
  const Database& database() const { return core_.database(); }
  const ViewManager& views() const { return core_.views(); }
  const IntegrityGuard& guard() const { return core_.guard(); }

  /// TEST-ONLY mutable escape hatches; see `EngineCore::mutable_database`.
  /// Production callers configure through SQL or the core's dedicated
  /// setters (`SetMaintenanceParallelism`).
  Database& mutable_database() { return core_.mutable_database(); }
  ViewManager& mutable_views() { return core_.mutable_views(); }
  IntegrityGuard& mutable_guard() { return core_.mutable_guard(); }

  /// The attached storage, or null for an in-memory engine.
  Storage* storage() { return core_.storage(); }

  /// True while the *default* session is inside BEGIN … COMMIT/ROLLBACK.
  bool in_transaction() const;

 private:
  EngineCore core_;
  std::unique_ptr<Session> session_;  // the default session
};

}  // namespace mview::sql

#endif  // MVIEW_SQL_ENGINE_H_
