#ifndef MVIEW_SQL_ENGINE_H_
#define MVIEW_SQL_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "ivm/integrity.h"
#include "ivm/view_manager.h"
#include "sql/parser.h"

namespace mview::sql {

/// A self-contained SQL session: a `Database`, a `ViewManager` keeping SQL-
/// created materialized views consistent, and an `IntegrityGuard` enforcing
/// SQL-created assertions.
///
/// This is the substrate the paper presumes around its algorithms — a
/// relational system in which views are defined declaratively and updated
/// transactions flow through the maintenance machinery.  DML statements
/// outside BEGIN/COMMIT auto-commit; inside an explicit transaction they
/// accumulate and commit atomically (with the net-effect semantics of
/// Section 3), and ROLLBACK discards them.  A commit is admitted only when
/// it violates no assertion; on success every immediate view is brought up
/// to date differentially.
class Engine {
 public:
  Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The outcome of one statement.
  struct Result {
    enum class Kind { kMessage, kRows };
    Kind kind = Kind::kMessage;
    std::string message;
    // For kRows:
    Schema schema;
    std::vector<std::pair<Tuple, int64_t>> rows;  // sorted, with counts

    /// Pretty-prints either the message or an aligned table with a
    /// trailing multiplicity column.
    std::string ToString() const;
  };

  /// Executes one statement (a trailing ';' is allowed).  Throws
  /// `mview::Error` on syntax or semantic errors; failed assertion checks
  /// return a `kMessage` result describing the rejection instead.
  Result Execute(const std::string& sql);

  /// Executes a ';'-separated script, stopping at the first error.
  std::vector<Result> ExecuteScript(const std::string& sql);

  Database& database() { return db_; }
  ViewManager& views() { return views_; }
  IntegrityGuard& guard() { return guard_; }

  /// True while inside BEGIN … COMMIT/ROLLBACK.
  bool in_transaction() const { return pending_.has_value(); }

 private:
  Result ExecuteStatement(const Statement& stmt);
  Result ExecuteSelect(const SelectQuery& query);
  Result ExecuteCreateView(const Statement& stmt);
  Result ExecuteInsert(const Statement& stmt);
  Result ExecuteDelete(const Statement& stmt);
  Result ExecuteUpdate(const Statement& stmt);
  Result CommitTransaction(Transaction txn);
  void EnsureTableDroppable(const std::string& name) const;

  // Builds a ViewDefinition (canonical attribute naming, resolved
  // condition and projection) from a SELECT body over base tables.
  ViewDefinition BuildDefinition(const std::string& name,
                                 const SelectQuery& query) const;

  Database db_;
  ViewManager views_;
  IntegrityGuard guard_;
  std::optional<Transaction> pending_;
};

}  // namespace mview::sql

#endif  // MVIEW_SQL_ENGINE_H_
