#include "sql/session.h"

#include "obs/trace.h"
#include "sql/engine.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace mview::sql {
namespace {

// `Parse` under a "parse" span, so every statement's trace starts with
// the parse phase nested inside the caller's "execute" span.
std::vector<Statement> ParseTraced(const std::string& sql) {
  static const uint32_t kParseName =
      obs::Tracer::Global().InternName("parse");
  obs::TraceSpan span(kParseName);
  return Parse(sql);
}

uint32_t ExecuteSpanName() {
  static const uint32_t kExecuteName =
      obs::Tracer::Global().InternName("execute");
  return kExecuteName;
}

// Maps an in-flight exception to the `Status` taxonomy.  Order matters:
// the specific `Error` subclasses first, then the `Error` base, then the
// catch-all for library exceptions that must not escape the non-throwing
// API (std::bad_alloc and friends).
Status ClassifyException(const std::exception& e, std::string message) {
  if (dynamic_cast<const CorruptionError*>(&e) != nullptr) {
    return Status::Corruption(std::move(message));
  }
  if (dynamic_cast<const IoError*>(&e) != nullptr) {
    return Status::IoError(std::move(message));
  }
  if (dynamic_cast<const ViewQuarantinedError*>(&e) != nullptr) {
    return Status::ViewQuarantined(std::move(message));
  }
  if (dynamic_cast<const DeadlineExceededError*>(&e) != nullptr) {
    return Status::DeadlineExceeded(std::move(message));
  }
  if (const auto* overloaded = dynamic_cast<const OverloadedError*>(&e)) {
    return Status::Overloaded(std::move(message), overloaded->retry_after_ms);
  }
  if (dynamic_cast<const AuthError*>(&e) != nullptr) {
    return Status::Unauthenticated(std::move(message));
  }
  if (dynamic_cast<const Error*>(&e) != nullptr) {
    return Status::ExecutionError(std::move(message));
  }
  return Status::Internal(std::move(message));
}

}  // namespace

Session::Session(EngineCore* core, uint64_t id) : core_(core), id_(id) {}

Session::~Session() { core_->UnregisterSession(this); }

obs::SessionStats Session::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Result Session::ExecuteOne(const Statement& stmt,
                           const util::Cancellation* cancel) {
  const bool is_read = stmt.kind == Statement::Kind::kSelect;
  Stopwatch timer;
  bool served_from_snapshot = false;
  try {
    Result result = core_->ExecuteParsed(stmt, &pending_,
                                         &served_from_snapshot, cancel);
    const int64_t nanos = timer.ElapsedNanos();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.statements;
    stats_.statement_latency.Record(nanos);
    if (is_read) stats_.read_latency.Record(nanos);
    if (served_from_snapshot) ++stats_.snapshot_reads;
    if (result.kind == Result::Kind::kRows) {
      stats_.rows_returned += static_cast<int64_t>(result.NumRows());
    }
    return result;
  } catch (...) {
    const int64_t nanos = timer.ElapsedNanos();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.statements;
    ++stats_.errors;
    stats_.statement_latency.Record(nanos);
    if (is_read) stats_.read_latency.Record(nanos);
    throw;
  }
}

Result Session::Execute(const std::string& sql,
                        const util::Cancellation* cancel) {
  obs::TraceSpan span(ExecuteSpanName());
  std::vector<Statement> statements = ParseTraced(sql);
  MVIEW_CHECK(statements.size() == 1,
              "Execute expects exactly one statement; got ",
              statements.size(), " (use ExecuteScript)");
  return ExecuteOne(statements[0], cancel);
}

Status Session::TryExecute(const std::string& sql, Result* result,
                           const util::Cancellation* cancel) {
  obs::TraceSpan span(ExecuteSpanName());
  std::vector<Statement> statements;
  try {
    statements = ParseTraced(sql);
  } catch (const Error& e) {
    return Status::ParseError(e.what());
  }
  if (statements.size() != 1) {
    return Status::ParseError("TryExecute expects exactly one statement; got " +
                              std::to_string(statements.size()) +
                              " (use TryExecuteScript)");
  }
  try {
    Result r = ExecuteOne(statements[0], cancel);
    if (result != nullptr) *result = std::move(r);
  } catch (const std::exception& e) {
    return ClassifyException(e, e.what());
  }
  return Status::Ok();
}

std::vector<Result> Session::ExecuteScript(const std::string& sql) {
  obs::TraceSpan span(ExecuteSpanName());
  std::vector<Statement> statements = ParseTraced(sql);
  std::vector<Result> results;
  for (size_t i = 0; i < statements.size(); ++i) {
    try {
      results.push_back(ExecuteOne(statements[i]));
    } catch (const Error& e) {
      internal::ThrowError("statement ", i + 1, " of ", statements.size(),
                           ": ", e.what());
    }
  }
  return results;
}

Status Session::TryExecuteScript(const std::string& sql,
                                 std::vector<Result>* results,
                                 size_t* failed_statement) {
  obs::TraceSpan span(ExecuteSpanName());
  std::vector<Statement> statements;
  try {
    statements = ParseTraced(sql);
  } catch (const Error& e) {
    return Status::ParseError(e.what());
  }
  for (size_t i = 0; i < statements.size(); ++i) {
    try {
      Result r = ExecuteOne(statements[i]);
      if (results != nullptr) results->push_back(std::move(r));
    } catch (const std::exception& e) {
      if (failed_statement != nullptr) *failed_statement = i;
      std::string message = "statement " + std::to_string(i + 1) + " of " +
                            std::to_string(statements.size()) + ": " +
                            e.what();
      return ClassifyException(e, std::move(message));
    }
  }
  return Status::Ok();
}

}  // namespace mview::sql
