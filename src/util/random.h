#ifndef MVIEW_UTIL_RANDOM_H_
#define MVIEW_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mview {

/// Deterministic pseudo-random number generator (xorshift64*).
///
/// Used by the workload generators and property tests so that every run of a
/// test or benchmark sees the same data for a given seed.
class Rng {
 public:
  /// Creates a generator from a non-zero seed (zero is remapped internally).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in the inclusive range [lo, hi].
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Samples a Zipf-distributed rank in [0, n) with exponent `theta`.
  ///
  /// Uses the classic inverse-CDF method over a precomputed table when the
  /// same (n, theta) is requested repeatedly.
  int64_t Zipf(int64_t n, double theta);

 private:
  uint64_t state_;
  // Cached Zipf CDF for the most recent (n, theta) pair.
  int64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace mview

#endif  // MVIEW_UTIL_RANDOM_H_
