#ifndef MVIEW_UTIL_STOPWATCH_H_
#define MVIEW_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace mview {

/// Monotonic wall-clock stopwatch used by the maintenance statistics and the
/// paper-style summary tables printed by the benchmark binaries.
class Stopwatch {
 public:
  /// Creates a running stopwatch.
  Stopwatch();

  /// Restarts timing from zero.
  void Restart();

  /// Returns elapsed nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const;

  /// Returns elapsed time in seconds.
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mview

#endif  // MVIEW_UTIL_STOPWATCH_H_
