#ifndef MVIEW_UTIL_STOPWATCH_H_
#define MVIEW_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace mview {

/// Monotonic wall-clock stopwatch used by the maintenance statistics and the
/// paper-style summary tables printed by the benchmark binaries.
///
/// Every reading is taken from `std::chrono::steady_clock` and stored as
/// nanoseconds since the clock's (process-wide) epoch, so timestamps taken
/// on different threads are mutually ordered and can never go backwards —
/// the property the tracer relies on when it stitches per-thread span
/// streams into one commit timeline.
class Stopwatch {
 public:
  /// Current steady-clock reading in nanoseconds.  Comparable across
  /// threads; the span recorder timestamps with this directly.
  static int64_t NowNanos();

  /// Creates a running stopwatch.
  Stopwatch();

  /// Restarts timing from zero.
  void Restart();

  /// Returns elapsed nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const;

  /// Returns elapsed time in seconds.
  double ElapsedSeconds() const;

 private:
  int64_t start_nanos_;
};

}  // namespace mview

#endif  // MVIEW_UTIL_STOPWATCH_H_
