#ifndef MVIEW_UTIL_JSON_H_
#define MVIEW_UTIL_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace mview::util {

/// Appends `s` to `*out` as a JSON string body (no surrounding quotes),
/// escaping quotes, backslashes, and control characters per RFC 8259.
/// Shared by the `Result` wire encoding and the server protocol so both
/// sides agree byte-for-byte on framing.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

/// `"s"` with escaping — the quoted form.
inline std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

}  // namespace mview::util

#endif  // MVIEW_UTIL_JSON_H_
