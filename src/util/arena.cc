#include "util/arena.h"

#include <algorithm>
#include <cstdint>

#include "util/fault.h"

#if defined(__SANITIZE_ADDRESS__)
#define MVIEW_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MVIEW_ARENA_ASAN 1
#endif
#endif

#ifdef MVIEW_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define MVIEW_ARENA_POISON(ptr, size) __asan_poison_memory_region(ptr, size)
#define MVIEW_ARENA_UNPOISON(ptr, size) \
  __asan_unpoison_memory_region(ptr, size)
#else
#define MVIEW_ARENA_POISON(ptr, size) ((void)(ptr), (void)(size))
#define MVIEW_ARENA_UNPOISON(ptr, size) ((void)(ptr), (void)(size))
#endif

namespace mview::util {

Arena::Arena(size_t block_bytes) : block_bytes_(block_bytes) {}

Arena::~Arena() {
  // Unpoison before the unique_ptrs free: the allocator may legally touch
  // the bytes it hands back.
  for (Block& b : blocks_) {
    MVIEW_ARENA_UNPOISON(b.data.get(), b.size);
  }
}

void* Arena::Allocate(size_t bytes, size_t align) {
  // The chaos matrix arms this point to simulate scratch-memory exhaustion
  // mid-round; the throw unwinds through the join-cache round guard and
  // quarantines the view (see tests/chaos_matrix_test.cc).
  MVIEW_FAULT_POINT("ra.batch.alloc");
  if (bytes == 0) bytes = 1;  // keep returned pointers distinct
  Block* b = next_block_ == 0 ? nullptr : &blocks_[next_block_ - 1];
  size_t offset = 0;
  if (b != nullptr) {
    offset = (b->used + align - 1) & ~(align - 1);
    if (offset + bytes > b->size) b = nullptr;
  }
  if (b == nullptr) {
    b = &GrowBlock(bytes + align);
    offset = (b->used + align - 1) & ~(align - 1);
  }
  char* ptr = b->data.get() + offset;
  MVIEW_ARENA_UNPOISON(ptr, bytes);
  b->used = offset + bytes;
  bytes_used_ += bytes;
  ++stats_.allocations;
  stats_.bytes_allocated += static_cast<int64_t>(bytes);
  stats_.high_water =
      std::max(stats_.high_water, static_cast<int64_t>(bytes_used_));
  return ptr;
}

Arena::Block& Arena::GrowBlock(size_t min_bytes) {
  // Advance over already-owned blocks (recycled by Reset) until one is big
  // enough; append a fresh block only when none fits.
  while (next_block_ < blocks_.size()) {
    Block& candidate = blocks_[next_block_];
    ++next_block_;
    if (candidate.size - candidate.used >= min_bytes) return candidate;
  }
  Block fresh;
  fresh.size = std::max(block_bytes_, min_bytes);
  fresh.data = std::make_unique<char[]>(fresh.size);
  MVIEW_ARENA_POISON(fresh.data.get(), fresh.size);
  blocks_.push_back(std::move(fresh));
  ++next_block_;
  stats_.blocks = static_cast<int64_t>(blocks_.size());
  stats_.bytes_reserved += static_cast<int64_t>(blocks_.back().size);
  return blocks_.back();
}

void Arena::Reset() {
  for (Block& b : blocks_) {
    MVIEW_ARENA_POISON(b.data.get(), b.size);
    b.used = 0;
  }
  next_block_ = 0;
  bytes_used_ = 0;
  ++stats_.resets;
}

}  // namespace mview::util
