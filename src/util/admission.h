#ifndef MVIEW_UTIL_ADMISSION_H_
#define MVIEW_UTIL_ADMISSION_H_

#include <atomic>
#include <cstdint>

namespace mview::util {

/// Two-lane admission control for the serving path: a bounded in-flight
/// budget per lane, enforced with a single atomic per admit/exit.
///
/// Lanes split by the engine's lock class: statements that will take the
/// commit lock exclusively (DML auto-commits, COMMIT, DDL) ride the
/// *write* lane; shared-lock statements (reads, staged DML inside a
/// transaction) ride the *read* lane.  Snapshot fast-path SELECTs bypass
/// admission entirely — they touch no lock, so read goodput survives
/// write overload by construction (the graceful-degradation claim bench
/// E22 measures).
///
/// When a lane is saturated the statement is shed *before any work*: the
/// admit is one fetch_add + compare, so a shed costs well under a
/// millisecond and carries a retry-after hint derived from an EWMA of the
/// lane's recent service time — the client backs off roughly one service
/// interval instead of guessing.
///
/// A budget of 0 disables the lane's limit (the default), so embedded
/// uses and existing tests see no behavior change unless they opt in.
class AdmissionController {
 public:
  enum class Lane { kRead, kWrite };

  struct Options {
    int64_t read_slots = 0;   // max concurrent read-lane statements, 0 = ∞
    int64_t write_slots = 0;  // max concurrent write-lane statements, 0 = ∞
  };

  /// Counter snapshot for SHOW STATS / Prometheus.
  struct Stats {
    int64_t read_admitted = 0;
    int64_t read_shed = 0;
    int64_t read_inflight = 0;
    int64_t write_admitted = 0;
    int64_t write_shed = 0;
    int64_t write_inflight = 0;
    int64_t retry_after_ms = 0;  // current write-lane backoff hint
  };

  explicit AdmissionController(Options options) : options_(options) {}

  /// Tries to claim a slot in `lane`.  Returns true (caller must pair with
  /// `Exit`) or false after bumping the lane's shed counter — the caller
  /// turns a false into `OverloadedError{RetryAfterMillis(lane)}`.
  bool TryEnter(Lane lane) {
    LaneState& s = state(lane);
    const int64_t slots =
        lane == Lane::kWrite ? options_.write_slots : options_.read_slots;
    if (slots > 0) {
      if (s.inflight.fetch_add(1, std::memory_order_acq_rel) >= slots) {
        s.inflight.fetch_sub(1, std::memory_order_acq_rel);
        s.shed.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } else {
      s.inflight.fetch_add(1, std::memory_order_acq_rel);
    }
    s.admitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Releases the slot and folds the statement's service time into the
  /// lane's EWMA (the retry-after source).  `nanos` may be 0 (unknown).
  void Exit(Lane lane, int64_t nanos) {
    LaneState& s = state(lane);
    s.inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (nanos > 0) {
      // EWMA with alpha = 1/8, updated via a racy read-modify-write: an
      // occasionally lost update only slows the hint's convergence.
      int64_t prev = s.ewma_nanos.load(std::memory_order_relaxed);
      int64_t next = prev == 0 ? nanos : prev + (nanos - prev) / 8;
      s.ewma_nanos.store(next, std::memory_order_relaxed);
    }
  }

  /// Backoff hint for a shed on `lane`: about one EWMA service interval,
  /// never less than 1 ms so clients always sleep before retrying.
  int64_t RetryAfterMillis(Lane lane) const {
    const int64_t ewma =
        state(lane).ewma_nanos.load(std::memory_order_relaxed);
    const int64_t ms = ewma / 1'000'000;
    return ms > 0 ? ms : 1;
  }

  Stats snapshot() const {
    Stats out;
    out.read_admitted = read_.admitted.load(std::memory_order_relaxed);
    out.read_shed = read_.shed.load(std::memory_order_relaxed);
    out.read_inflight = read_.inflight.load(std::memory_order_relaxed);
    out.write_admitted = write_.admitted.load(std::memory_order_relaxed);
    out.write_shed = write_.shed.load(std::memory_order_relaxed);
    out.write_inflight = write_.inflight.load(std::memory_order_relaxed);
    out.retry_after_ms = RetryAfterMillis(Lane::kWrite);
    return out;
  }

  const Options& options() const { return options_; }

 private:
  struct LaneState {
    std::atomic<int64_t> inflight{0};
    std::atomic<int64_t> admitted{0};
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> ewma_nanos{0};
  };

  LaneState& state(Lane lane) {
    return lane == Lane::kWrite ? write_ : read_;
  }
  const LaneState& state(Lane lane) const {
    return lane == Lane::kWrite ? write_ : read_;
  }

  Options options_;
  LaneState read_;
  LaneState write_;
};

}  // namespace mview::util

#endif  // MVIEW_UTIL_ADMISSION_H_
