#include "util/fault.h"

#include <new>

#include "util/error.h"

namespace mview::util {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  MVIEW_CHECK(!point.empty(), "fault point name cannot be empty");
  MVIEW_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
              "fault probability must be within [0, 1]");
  MVIEW_CHECK(spec.hits_before >= 0, "hits_before cannot be negative");
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = points_.try_emplace(point);
  Armed& armed = it->second;
  armed.spec = std::move(spec);
  armed.hits = 0;
  armed.fires = 0;
  armed.spent = false;
  armed.rng.seed(armed.spec.seed);
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lk(mu_);
  armed_points_.fetch_sub(static_cast<int64_t>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

void FaultRegistry::OnHit(const char* point) {
  FaultKind kind;
  std::string message;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return;  // a different point is armed
    Armed& armed = it->second;
    ++armed.hits;
    if (armed.spent) return;
    if (armed.hits <= armed.spec.hits_before) return;
    if (armed.spec.probability < 1.0) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(armed.rng) >= armed.spec.probability) return;
    }
    ++armed.fires;
    if (!armed.spec.sticky) armed.spent = true;
    kind = armed.spec.kind;
    message = "injected fault at " + std::string(point);
    if (!armed.spec.message.empty()) message += ": " + armed.spec.message;
  }
  // Throw outside the lock: unwinding may re-enter the registry (another
  // fault point on the cleanup path).
  switch (kind) {
    case FaultKind::kError:
      throw Error(message);
    case FaultKind::kIoError:
      throw IoError(message);
    case FaultKind::kCorruption:
      throw CorruptionError(message);
    case FaultKind::kBadAlloc:
      throw std::bad_alloc();
    case FaultKind::kDeadline:
      throw DeadlineExceededError(message);
  }
}

int64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultRegistry::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, armed] : points_) names.push_back(name);
  return names;
}

}  // namespace mview::util
