#ifndef MVIEW_UTIL_DEADLINE_H_
#define MVIEW_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace mview::util {

/// Cooperative cancellation token: an optional absolute deadline plus a
/// force-cancel flag, polled at cheap checkpoints along the statement's
/// execution path.
///
/// The contract mirrors the fault registry's: the disabled cost of a poll
/// is a null-pointer branch (`if (cancel) cancel->Check()`), and an armed
/// token costs one `steady_clock::now()` per poll — poll points therefore
/// sit per *batch* / per *join step*, never per tuple.  `Check()` throws
/// `DeadlineExceededError`, and every poll point is placed where stack
/// unwinding restores all invariants: join-cache rounds abort via
/// `JoinCacheRoundGuard`, prepared deltas are dropped before any base or
/// view buffer is touched, and the WAL has not yet logged the commit.
/// The point of no return is the WAL append — after it, maintenance runs
/// to completion regardless of the token (`ViewManager::CommitPrepared`
/// never polls).
///
/// Thread-safety: `Cancel()` may race `Check()`/`Expired()` freely (the
/// flag is an atomic); the deadline itself is immutable after
/// construction.  The server's drain path shares one token per connection
/// and force-cancels it when the drain timeout lapses.
class Cancellation {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token with no deadline: only `Cancel()` can expire it.
  Cancellation() = default;

  /// A token that expires `timeout_ms` from now (<= 0 expires immediately).
  static Cancellation After(int64_t timeout_ms) {
    return Cancellation(Clock::now() + std::chrono::milliseconds(timeout_ms));
  }

  explicit Cancellation(Clock::time_point deadline) : deadline_(deadline) {}

  /// Expires the token from another thread (drain force-cancel).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when cancelled or past the deadline.  Does not throw.
  bool Expired() const {
    if (cancelled()) return true;
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  /// Poll point body: throws `DeadlineExceededError` when expired.  Also a
  /// fault point ("cancel.poll") so tests can force an expiry at exactly
  /// the k-th poll of a statement and verify the unwind from every site.
  void Check() const;

  /// Milliseconds until the deadline (0 when expired, nullopt when none).
  std::optional<int64_t> RemainingMillis() const {
    if (!deadline_.has_value()) return std::nullopt;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    *deadline_ - Clock::now())
                    .count();
    return left > 0 ? left : 0;
  }

 private:
  std::optional<Clock::time_point> deadline_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace mview::util

#endif  // MVIEW_UTIL_DEADLINE_H_
