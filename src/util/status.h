#ifndef MVIEW_UTIL_STATUS_H_
#define MVIEW_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace mview {

/// The outcome of a non-throwing operation anywhere in the system: success,
/// or a classified failure with the error text.
///
/// One taxonomy serves every layer — the SQL engine's `TryExecute`,
/// per-client sessions, the storage facade, and the network frontend all
/// report through this type, so a server can forward an engine failure over
/// the wire without re-classifying it.  (Historically this lived as
/// `sql::Engine::Status`; that alias is retired.)
struct Status {
  enum class Kind {
    kOk,
    kParseError,      // lexer/parser rejected the text
    kExecutionError,  // a statement failed (semantic error, unknown
                      // name, type mismatch, …)
    kIoError,         // the durable log or checkpoint hit an I/O
                      // failure; the commit did not happen
    kCorruption,      // persistent state failed validation (bad magic,
                      // CRC mismatch, undecodable body)
    kViewQuarantined,  // the statement read a quarantined view; run
                       // REPAIR VIEW to heal it first
    kUnavailable,     // the peer is gone or the server is draining —
                      // reconnect-and-retry territory, not a SQL error
    kInternal,        // an unclassified exception (std::bad_alloc, a
                      // library error, …) — caught at a noexcept boundary
                      // rather than allowed to escape
    kDeadlineExceeded,  // the statement's deadline expired at a poll
                        // point; it unwound cleanly without side effects
    kOverloaded,      // admission control shed the statement before it
                      // ran; `retry_after_ms` hints when to retry
    kUnauthenticated,  // the connection has not completed (or failed)
                       // the HELLO handshake on an auth-enabled server
  };
  bool ok = true;
  Kind kind = Kind::kOk;
  std::string message;
  // Backoff hint for kOverloaded, milliseconds (0 = no hint).  Travels on
  // the wire so clients can pace retries to the server's observed load.
  int64_t retry_after_ms = 0;

  static Status Ok() { return Status{}; }
  static Status ParseError(std::string message) {
    return Status{false, Kind::kParseError, std::move(message)};
  }
  static Status ExecutionError(std::string message) {
    return Status{false, Kind::kExecutionError, std::move(message)};
  }
  static Status IoError(std::string message) {
    return Status{false, Kind::kIoError, std::move(message)};
  }
  static Status Corruption(std::string message) {
    return Status{false, Kind::kCorruption, std::move(message)};
  }
  static Status ViewQuarantined(std::string message) {
    return Status{false, Kind::kViewQuarantined, std::move(message)};
  }
  static Status Unavailable(std::string message) {
    return Status{false, Kind::kUnavailable, std::move(message)};
  }
  static Status Internal(std::string message) {
    return Status{false, Kind::kInternal, std::move(message)};
  }
  static Status DeadlineExceeded(std::string message) {
    return Status{false, Kind::kDeadlineExceeded, std::move(message)};
  }
  static Status Overloaded(std::string message, int64_t retry_after_ms) {
    return Status{false, Kind::kOverloaded, std::move(message),
                  retry_after_ms};
  }
  static Status Unauthenticated(std::string message) {
    return Status{false, Kind::kUnauthenticated, std::move(message)};
  }
};

/// Stable lowercase identifier for a kind — the wire encoding ("ok",
/// "parse_error", "execution_error", "io_error", "corruption",
/// "view_quarantined", "unavailable", "internal", "deadline_exceeded",
/// "overloaded", "unauthenticated").
inline const char* StatusKindName(Status::Kind kind) {
  switch (kind) {
    case Status::Kind::kOk:
      return "ok";
    case Status::Kind::kParseError:
      return "parse_error";
    case Status::Kind::kExecutionError:
      return "execution_error";
    case Status::Kind::kIoError:
      return "io_error";
    case Status::Kind::kCorruption:
      return "corruption";
    case Status::Kind::kViewQuarantined:
      return "view_quarantined";
    case Status::Kind::kUnavailable:
      return "unavailable";
    case Status::Kind::kInternal:
      return "internal";
    case Status::Kind::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::Kind::kOverloaded:
      return "overloaded";
    case Status::Kind::kUnauthenticated:
      return "unauthenticated";
  }
  return "internal";
}

/// Inverse of `StatusKindName` (unknown names map to kInternal) — used by
/// wire decoding on the client side.
inline Status::Kind StatusKindFromName(const std::string& name) {
  if (name == "ok") return Status::Kind::kOk;
  if (name == "parse_error") return Status::Kind::kParseError;
  if (name == "execution_error") return Status::Kind::kExecutionError;
  if (name == "io_error") return Status::Kind::kIoError;
  if (name == "corruption") return Status::Kind::kCorruption;
  if (name == "view_quarantined") return Status::Kind::kViewQuarantined;
  if (name == "unavailable") return Status::Kind::kUnavailable;
  if (name == "deadline_exceeded") return Status::Kind::kDeadlineExceeded;
  if (name == "overloaded") return Status::Kind::kOverloaded;
  if (name == "unauthenticated") return Status::Kind::kUnauthenticated;
  return Status::Kind::kInternal;
}

}  // namespace mview

#endif  // MVIEW_UTIL_STATUS_H_
