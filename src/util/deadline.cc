#include "util/deadline.h"

#include "util/error.h"
#include "util/fault.h"

namespace mview::util {

void Cancellation::Check() const {
  MVIEW_FAULT_POINT("cancel.poll");
  if (cancelled()) {
    throw DeadlineExceededError("statement cancelled");
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    throw DeadlineExceededError("statement deadline exceeded");
  }
}

}  // namespace mview::util
