#ifndef MVIEW_UTIL_ARENA_H_
#define MVIEW_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mview::util {

/// Usage counters of one `Arena`; the differential maintainer surfaces them
/// per view through `MaintenanceStats` / `SHOW STATS [JSON]` / Prometheus.
struct ArenaStats {
  int64_t allocations = 0;     // Allocate calls since construction
  int64_t bytes_allocated = 0; // bytes handed out since construction
  int64_t resets = 0;          // Reset calls (one per maintenance round)
  int64_t blocks = 0;          // gauge: blocks currently owned
  int64_t bytes_reserved = 0;  // gauge: block bytes currently owned
  int64_t high_water = 0;      // max bytes live between two Resets
};

/// A bump-pointer allocation arena for per-maintenance-round scratch memory.
///
/// The columnar batch pipeline (`src/ra/batch.h`) allocates its column
/// vectors and selection vectors here instead of the heap: a maintenance
/// round performs thousands of small, identically-scoped allocations whose
/// lifetimes all end when the round's delta has been emitted, which is the
/// textbook arena workload.  `Reset()` recycles every block in O(#blocks)
/// without touching the heap, so steady-state rounds allocate from memory
/// that is already hot in cache.
///
/// Poisoning: under AddressSanitizer the unused tail of every block — and,
/// after `Reset()`, the entire recycled block — is poisoned, so a batch or
/// selection vector that outlives its round (use-after-round-reset) aborts
/// with an ASan report instead of silently reading recycled rows.  The
/// `batch`-labelled tests exercise this contract.
///
/// Fault injection: every allocation passes the `ra.batch.alloc` point, so
/// the chaos matrix can simulate scratch-memory exhaustion mid-round; the
/// thrown error unwinds through the join-cache round guard and quarantines
/// the view instead of corrupting it.
///
/// Thread-safety: none.  Each `DifferentialMaintainer` owns one arena and
/// the commit pipeline runs at most one worker per view per commit.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{64} << 10;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two ≤ alignof(std::max_align_t)).  The storage stays valid until
  /// the next `Reset()`.  Never returns null; throws `std::bad_alloc` when
  /// the heap refuses a new block.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed convenience: uninitialized array of `n` trivially-destructible
  /// `T`s (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Ends the round: every block is recycled (and poisoned under ASan) but
  /// stays owned, so the next round's allocations reuse the same memory.
  /// All pointers previously handed out become invalid.
  void Reset();

  /// Bytes handed out since the last `Reset` (the current round's live
  /// scratch footprint).
  size_t bytes_used() const { return bytes_used_; }

  const ArenaStats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  /// Makes `blocks_[next_block_]` a block with ≥ `min_bytes` free.
  Block& GrowBlock(size_t min_bytes);

  const size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t next_block_ = 0;  // blocks_[next_block_-1] is the active block
  size_t bytes_used_ = 0;
  ArenaStats stats_;
};

}  // namespace mview::util

#endif  // MVIEW_UTIL_ARENA_H_
