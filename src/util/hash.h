#ifndef MVIEW_UTIL_HASH_H_
#define MVIEW_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mview {

/// Mixes `value` into an existing hash seed (boost-style combiner with a
/// 64-bit golden-ratio constant).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes an object with `std::hash` and mixes it into `seed`.
template <typename T>
std::size_t HashCombineValue(std::size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace mview

#endif  // MVIEW_UTIL_HASH_H_
