#include "util/random.h"

#include <cmath>

#include "util/error.h"

namespace mview {

Rng::Rng(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

uint64_t Rng::Next() {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dULL;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  MVIEW_CHECK(lo <= hi, "invalid uniform range");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  MVIEW_CHECK(n > 0, "Zipf needs a positive population");
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      zipf_cdf_[static_cast<size_t>(i)] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) --it;
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

}  // namespace mview
