#ifndef MVIEW_UTIL_THREAD_POOL_H_
#define MVIEW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mview::util {

/// A fixed-size pool of worker threads with a single shared FIFO queue (no
/// work stealing — tasks here are per-view delta computations of comparable
/// size, so a central queue keeps the implementation small and the
/// completion order deterministic enough for `WaitAll`).
///
/// Usage is submit-then-join: callers `Submit` a batch of independent tasks
/// and `WaitAll` blocks until every submitted task has finished.  The pool
/// is reusable across batches.  Exceptions thrown by tasks are captured; the
/// *first* one (in completion order) is rethrown from `WaitAll`, after all
/// tasks have drained, so the caller never observes a half-running batch.
///
/// Thread-safety: `Submit` and `WaitAll` may be called from any thread, but
/// the submit-then-join protocol assumes one coordinating caller (as in
/// `ViewManager::ApplyEffect`).  Tasks must not themselves call `Submit` or
/// `WaitAll` on their own pool.
class ThreadPool {
 public:
  /// Starts `num_workers` (≥ 1) worker threads.  Throws `Error` on 0.
  explicit ThreadPool(size_t num_workers);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return threads_.size(); }

  /// A consistent point-in-time sample of the pool's load, taken under the
  /// pool mutex: `queued` tasks are waiting, `active` tasks are executing
  /// on a worker right now (`queued + active` = in-flight batch size).
  struct Gauges {
    size_t workers = 0;
    size_t queued = 0;
    size_t active = 0;
  };

  /// Samples the current gauges.  Safe from any thread; surfaced by
  /// `SHOW STATS` so parallel maintenance is no longer a black box.
  Gauges gauges() const;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception a task raised (if any).  Afterwards the pool is idle
  /// and reusable.
  void WaitAll();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable task_available_;  // signals workers
  std::condition_variable batch_done_;      // signals WaitAll
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace mview::util

#endif  // MVIEW_UTIL_THREAD_POOL_H_
