#ifndef MVIEW_UTIL_FAULT_H_
#define MVIEW_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace mview::util {

/// Which exception an armed fault point throws when it fires.
enum class FaultKind {
  kError,       // mview::Error — a broken invariant / logic failure
  kIoError,     // mview::IoError — transient durability failure (EIO)
  kCorruption,  // mview::CorruptionError — sticky, no automatic retry
  kBadAlloc,    // std::bad_alloc — an allocation failure outside the
                // mview::Error hierarchy (exercises the kInternal mapping)
  kDeadline,    // mview::DeadlineExceededError — as if the statement's
                // deadline expired at this poll point (cancellation tests
                // arm it on "cancel.poll" to hit every unwind path)
};

/// Per-point firing policy.  The default spec fires an `Error` exactly once
/// on the first hit.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;

  /// false: fail-once — the point fires on one eligible hit, then disarms
  /// itself (a transient glitch).  true: every eligible hit fires until the
  /// point is explicitly disarmed (a persistent fault, e.g. a dead disk).
  bool sticky = false;

  /// Hits to let pass before the point becomes eligible, so a test can
  /// target "the 3rd commit" deterministically.  0 fires on the first hit.
  int64_t hits_before = 0;

  /// Chance each *eligible* hit fires, in [0, 1].  1.0 (default) is
  /// deterministic; below that, a per-point RNG seeded with `seed` decides,
  /// which is how the chaos runner randomizes while staying reproducible.
  double probability = 1.0;
  uint64_t seed = 0;

  /// Appended to the thrown message (after the point name).
  std::string message;
};

/// Process-wide registry of named fault points.
///
/// Call sites mark themselves with `MVIEW_FAULT_POINT("layer.operation")`;
/// tests arm a point with a `FaultSpec` and the next matching hit throws
/// the configured exception.  The discipline mirrors `obs::Tracer`: the
/// disabled cost is one relaxed atomic load and a branch — no lock, no map
/// lookup, no string — so the points can sit on the maintenance hot path
/// permanently (bench E18 pins the overhead within noise).
///
/// Thread-safety: `Arm`/`Disarm`/counters take the registry mutex; `OnHit`
/// (the armed slow path) does too, so points may be hit from pool workers
/// and WAL leader threads concurrently.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// True when at least one point is armed — the macro's fast-path gate.
  bool armed() const { return armed_points_.load(std::memory_order_relaxed) > 0; }

  /// Arms (or re-arms, resetting counters) the named point.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms one point / every point.  Disarming keeps nothing: hit
  /// counters for the point are forgotten.
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Slow path behind the macro: looks up `point` and fires per its spec.
  /// A hit on an unarmed point is a no-op (another point is armed).
  void OnHit(const char* point);

  /// Hits observed on an armed point since `Arm` (0 when not armed).
  int64_t HitCount(const std::string& point) const;

  /// Times the armed point has actually fired since `Arm`.
  int64_t FireCount(const std::string& point) const;

  /// Names of currently armed points, sorted.
  std::vector<std::string> ArmedPoints() const;

 private:
  struct Armed {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
    bool spent = false;  // fail-once point that already fired
    std::mt19937_64 rng;
  };

  FaultRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Armed> points_;
  // Count of armed entries, mirrored out of the map so `armed()` needs no
  // lock.  Relaxed is enough: a racing hit that misses a just-armed point
  // behaves like a hit that happened before Arm.
  std::atomic<int64_t> armed_points_{0};
};

/// RAII arming for tests: arms in the constructor, disarms the same point
/// in the destructor so a failing assertion cannot leak an armed fault
/// into the next test.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec) : point_(std::move(point)) {
    FaultRegistry::Global().Arm(point_, std::move(spec));
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace mview::util

/// Marks a named fault point.  `name` must be a string literal (the armed
/// slow path interns nothing — it compares against the registry map).
/// Disabled cost: one relaxed atomic load and a never-taken branch.
#define MVIEW_FAULT_POINT(name)                              \
  do {                                                       \
    if (::mview::util::FaultRegistry::Global().armed()) {    \
      ::mview::util::FaultRegistry::Global().OnHit(name);    \
    }                                                        \
  } while (0)

#endif  // MVIEW_UTIL_FAULT_H_
