#include "util/stopwatch.h"

namespace mview {

int64_t Stopwatch::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Stopwatch::Stopwatch() : start_nanos_(NowNanos()) {}

void Stopwatch::Restart() { start_nanos_ = NowNanos(); }

int64_t Stopwatch::ElapsedNanos() const { return NowNanos() - start_nanos_; }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) * 1e-9;
}

}  // namespace mview
