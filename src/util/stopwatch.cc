#include "util/stopwatch.h"

namespace mview {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

int64_t Stopwatch::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) * 1e-9;
}

}  // namespace mview
