#include "util/thread_pool.h"

#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/error.h"

namespace mview::util {

ThreadPool::ThreadPool(size_t num_workers) {
  MVIEW_CHECK(num_workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] {
      obs::Tracer::Global().SetCurrentThreadName("pool-worker-" +
                                                 std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

ThreadPool::Gauges ThreadPool::gauges() const {
  std::unique_lock<std::mutex> lock(mu_);
  Gauges g;
  g.workers = threads_.size();
  g.queued = queue_.size();
  g.active = in_flight_ - queue_.size();
  return g;
}

void ThreadPool::Submit(std::function<void()> task) {
  MVIEW_CHECK(task != nullptr, "null task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    MVIEW_CHECK(!shutting_down_, "Submit on a destructing pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (--in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace mview::util
