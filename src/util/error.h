#ifndef MVIEW_UTIL_ERROR_H_
#define MVIEW_UTIL_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace mview {

/// Exception type thrown for API misuse and invariant violations.
///
/// The library throws `Error` for conditions that indicate a programming
/// mistake by the caller (schema mismatches, references to unknown
/// attributes or relations, malformed conditions) or a broken internal
/// invariant.  Data-path code on the maintenance hot path does not throw.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& message) : std::logic_error(message) {}
};

/// A durability failure: the operating system refused a write/fsync, or a
/// fault-injection policy injected one.  Surfaced to SQL callers as
/// `mview::Status::Kind::kIoError`, not as a new public exception type —
/// catch sites live inside `TryExecute`.  Treated as *transient* by the
/// view-quarantine machinery (automatic repair retries with backoff).
class IoError : public Error {
 public:
  explicit IoError(const std::string& message) : Error(message) {}
};

/// Persistent state failed validation: bad magic, a CRC mismatch away from
/// the log tail, an impossible LSN sequence, or a checkpoint that does not
/// decode.  Surfaced as `mview::Status::Kind::kCorruption`.  Treated as
/// *sticky* by the quarantine machinery (no automatic retry; explicit
/// `REPAIR VIEW` only).
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& message) : Error(message) {}
};

/// A read against a quarantined materialized view: maintenance failed
/// mid-commit and the materialization is not trusted until `REPAIR VIEW`
/// (or the automatic transient-retry path) heals it.  Surfaced as
/// `mview::Status::Kind::kViewQuarantined`.
class ViewQuarantinedError : public Error {
 public:
  explicit ViewQuarantinedError(const std::string& message) : Error(message) {}
};

/// A statement's deadline expired (or its connection was force-cancelled
/// during drain) at a cooperative poll point.  Surfaced as
/// `mview::Status::Kind::kDeadlineExceeded`.  Cancellation is clean by
/// construction: poll points sit only where unwinding restores every
/// structure (round guards abort join-cache rounds, prepared deltas are
/// dropped before any base or view buffer is touched).
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& message)
      : Error(message) {}
};

/// Admission control shed the statement before it ran: the lane's in-flight
/// budget was exhausted.  Surfaced as `mview::Status::Kind::kOverloaded`
/// with `retry_after_ms` carrying the server's backoff hint (an EWMA of
/// recent statement service time).  Nothing executed; retry is always safe.
class OverloadedError : public Error {
 public:
  OverloadedError(const std::string& message, int64_t retry_after_ms)
      : Error(message), retry_after_ms(retry_after_ms) {}

  int64_t retry_after_ms = 0;
};

/// The wire peer has not completed the HELLO handshake (or presented a bad
/// token) on a server that requires one.  Surfaced as
/// `mview::Status::Kind::kUnauthenticated`.
class AuthError : public Error {
 public:
  explicit AuthError(const std::string& message) : Error(message) {}
};

namespace internal {

/// Builds an error message from streamable parts and throws `Error`.
template <typename... Args>
[[noreturn]] void ThrowError(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  throw Error(os.str());
}

}  // namespace internal
}  // namespace mview

/// Checks a condition and throws `mview::Error` with a formatted message
/// when it does not hold.  Used for argument validation and internal
/// invariants; always on (not compiled out in release builds), since a
/// silently corrupted materialized view is worse than a failed call.
#define MVIEW_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mview::internal::ThrowError("mview check failed: ", #cond, " at ",  \
                                    __FILE__, ":", __LINE__, ": ",          \
                                    ##__VA_ARGS__);                         \
    }                                                                       \
  } while (0)

#endif  // MVIEW_UTIL_ERROR_H_
