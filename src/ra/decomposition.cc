#include "ra/decomposition.h"

#include <algorithm>
#include <optional>

#include "util/error.h"

namespace mview {
namespace {

// Reflects an operator across the comparison (a op b ⇔ b Reflect(op) a).
CompareOp Reflect(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

// A set of rows over the concatenation of `members`' schemes (in order).
struct SubResult {
  std::vector<size_t> members;  // input indices
  std::vector<std::pair<std::vector<Value>, int64_t>> rows;
};

class Decomposer {
 public:
  Decomposer(const SpjQuery& query, CountedRelation* out, int64_t multiplier,
             PlanStats* stats)
      : query_(query), out_(out), multiplier_(multiplier), stats_(stats) {}

  void Run();

 private:
  // Resolves a variable to (input index, local attribute index).
  std::pair<size_t, size_t> Resolve(const std::string& var) const {
    for (size_t i = 0; i < query_.inputs.size(); ++i) {
      if (auto idx = query_.inputs[i]->schema().IndexOf(var)) return {i, *idx};
    }
    internal::ThrowError("condition variable not found in any input: ", var);
  }

  // Which inputs does this atom reference?
  std::pair<size_t, std::optional<size_t>> AtomInputs(const Atom& atom) const {
    auto [li, la] = Resolve(atom.lhs);
    (void)la;
    if (!atom.rhs_var.has_value()) return {li, std::nullopt};
    auto [ri, ra] = Resolve(*atom.rhs_var);
    (void)ra;
    if (ri == li) return {li, std::nullopt};
    return {li, ri};
  }

  // Substitutes input `bound`'s tuple `t` into `atom`.  Returns false when
  // the grounded atom evaluates to false (prune).  When the atom survives
  // half-grounded, appends the rewritten constant atom to `out`.
  bool SubstituteAtom(const Atom& atom, size_t bound, const Tuple& t,
                      std::vector<Atom>* out) const {
    const Schema& schema = query_.inputs[bound]->schema();
    bool lhs_bound = schema.Contains(atom.lhs);
    bool rhs_bound = atom.rhs_var.has_value() && schema.Contains(*atom.rhs_var);
    if (!lhs_bound && !rhs_bound) {
      out->push_back(atom);
      return true;
    }
    if (lhs_bound && (!atom.rhs_var.has_value() || rhs_bound)) {
      return atom.Evaluate(schema, t);  // fully grounded
    }
    if (lhs_bound) {
      // value op y + c  ⇔  y Reflect(op) (value − c).
      const Value& v = t.at(schema.MustIndexOf(atom.lhs));
      Value constant = atom.offset == 0 ? v : Value(v.AsInt64() - atom.offset);
      out->push_back(Atom::VarConst(*atom.rhs_var, Reflect(atom.op),
                                    std::move(constant)));
      return true;
    }
    // x op value + c  ⇔  x op (value + c).
    const Value& v = t.at(schema.MustIndexOf(*atom.rhs_var));
    Value constant = atom.offset == 0 ? v : Value(v.AsInt64() + atom.offset);
    out->push_back(Atom::VarConst(atom.lhs, atom.op, std::move(constant)));
    return true;
  }

  // Filters `input`'s materialized rows by the atoms that reference only it.
  std::vector<std::pair<Tuple, int64_t>> FilterRows(
      size_t input, const std::vector<Atom>& atoms) const {
    const Schema& schema = query_.inputs[input]->schema();
    std::vector<std::pair<Tuple, int64_t>> rows;
    for (const auto& [t, c] : materialized_[input]) {
      bool keep = true;
      for (const Atom& atom : atoms) {
        auto [a, b] = AtomInputs(atom);
        if (a != input || b.has_value()) continue;
        if (!atom.Evaluate(schema, t)) {
          keep = false;
          break;
        }
      }
      if (keep) rows.emplace_back(t, c);
    }
    return rows;
  }

  // The recursive decomposition: evaluates the conjunctive query over
  // `inputs` with `atoms`, all of which reference only those inputs.
  // The returned members are always in ascending input order (canonical),
  // so results from different recursion shapes compose consistently.
  SubResult Solve(std::vector<size_t> inputs, std::vector<Atom> atoms) const;

  // Permutes a result's row layout so that members are ascending.
  void Canonicalize(SubResult* result) const;

  // Splits `inputs` into connected components under `atoms`.
  std::vector<std::vector<size_t>> Components(
      const std::vector<size_t>& inputs,
      const std::vector<Atom>& atoms) const;

  const SpjQuery& query_;
  CountedRelation* out_;
  int64_t multiplier_;
  PlanStats* stats_;
  std::vector<std::vector<std::pair<Tuple, int64_t>>> materialized_;
};

std::vector<std::vector<size_t>> Decomposer::Components(
    const std::vector<size_t>& inputs, const std::vector<Atom>& atoms) const {
  // Union-find over the member inputs.
  std::vector<size_t> parent(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto position = [&](size_t input) {
    return static_cast<size_t>(
        std::find(inputs.begin(), inputs.end(), input) - inputs.begin());
  };
  for (const Atom& atom : atoms) {
    auto [a, b] = AtomInputs(atom);
    if (!b.has_value()) continue;
    size_t pa = find(position(a));
    size_t pb = find(position(*b));
    if (pa != pb) parent[pa] = pb;
  }
  std::vector<std::vector<size_t>> components;
  std::vector<int> component_of(inputs.size(), -1);
  for (size_t i = 0; i < inputs.size(); ++i) {
    size_t root = find(i);
    if (component_of[root] < 0) {
      component_of[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<size_t>(component_of[root])].push_back(inputs[i]);
  }
  return components;
}

void Decomposer::Canonicalize(SubResult* result) const {
  if (std::is_sorted(result->members.begin(), result->members.end())) return;
  // Current block offset of each member in the row layout.
  std::vector<std::pair<size_t, size_t>> layout;  // (member, offset)
  size_t offset = 0;
  for (size_t member : result->members) {
    layout.emplace_back(member, offset);
    offset += query_.inputs[member]->schema().size();
  }
  std::sort(layout.begin(), layout.end());
  std::vector<size_t> members;
  for (const auto& [member, off] : layout) members.push_back(member);
  for (auto& [values, count] : result->rows) {
    std::vector<Value> permuted;
    permuted.reserve(values.size());
    for (const auto& [member, off] : layout) {
      size_t arity = query_.inputs[member]->schema().size();
      for (size_t a = 0; a < arity; ++a) permuted.push_back(values[off + a]);
    }
    values = std::move(permuted);
  }
  result->members = std::move(members);
}

SubResult Decomposer::Solve(std::vector<size_t> inputs,
                            std::vector<Atom> atoms) const {
  SubResult result;
  if (inputs.size() == 1) {
    result.members = inputs;
    for (auto& [t, c] : FilterRows(inputs[0], atoms)) {
      result.rows.emplace_back(t.values(), c);
    }
    if (stats_ != nullptr) {
      stats_->intermediate_tuples +=
          static_cast<int64_t>(result.rows.size());
    }
    return result;
  }

  // Detachment: independent components evaluate separately and combine by
  // cross product — each component's result is computed once instead of
  // once per binding of the others.
  std::vector<std::vector<size_t>> components = Components(inputs, atoms);
  if (components.size() > 1) {
    SubResult combined;
    bool first = true;
    for (auto& component : components) {
      // Route each atom to the component owning its inputs.
      std::vector<Atom> local;
      for (const Atom& atom : atoms) {
        auto [a, b] = AtomInputs(atom);
        (void)b;
        if (std::find(component.begin(), component.end(), a) !=
            component.end()) {
          local.push_back(atom);
        }
      }
      SubResult part = Solve(component, std::move(local));
      if (first) {
        combined = std::move(part);
        first = false;
        continue;
      }
      SubResult next;
      next.members = combined.members;
      next.members.insert(next.members.end(), part.members.begin(),
                          part.members.end());
      for (const auto& [lv, lc] : combined.rows) {
        for (const auto& [rv, rc] : part.rows) {
          std::vector<Value> values = lv;
          values.insert(values.end(), rv.begin(), rv.end());
          next.rows.emplace_back(std::move(values), lc * rc);
        }
      }
      combined = std::move(next);
    }
    if (stats_ != nullptr) {
      stats_->intermediate_tuples +=
          static_cast<int64_t>(combined.rows.size());
    }
    Canonicalize(&combined);
    return combined;
  }

  // Tuple substitution: eliminate the input with the fewest (pre-filtered)
  // rows.
  size_t best = 0;
  std::vector<std::vector<std::pair<Tuple, int64_t>>> filtered(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    filtered[i] = FilterRows(inputs[i], atoms);
    if (filtered[i].size() < filtered[best].size()) best = i;
  }
  size_t victim = inputs[best];
  std::vector<size_t> rest = inputs;
  rest.erase(rest.begin() + static_cast<ptrdiff_t>(best));

  // Sub-results are canonical (ascending members), so every tuple's
  // recursion produces the same layout: victim block, then sorted rest.
  std::vector<size_t> sorted_rest = rest;
  std::sort(sorted_rest.begin(), sorted_rest.end());
  result.members.push_back(victim);
  result.members.insert(result.members.end(), sorted_rest.begin(),
                        sorted_rest.end());
  for (const auto& [t, c] : filtered[best]) {
    std::vector<Atom> substituted;
    bool alive = true;
    for (const Atom& atom : atoms) {
      auto [a, b] = AtomInputs(atom);
      if (a == victim && !b.has_value()) continue;  // already applied
      if (!SubstituteAtom(atom, victim, t, &substituted)) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    SubResult sub = Solve(rest, std::move(substituted));
    for (const auto& [values, count] : sub.rows) {
      std::vector<Value> row = t.values();
      row.insert(row.end(), values.begin(), values.end());
      result.rows.emplace_back(std::move(row), c * count);
    }
  }
  if (stats_ != nullptr) {
    stats_->intermediate_tuples += static_cast<int64_t>(result.rows.size());
  }
  Canonicalize(&result);
  return result;
}

void Decomposer::Run() {
  MVIEW_CHECK(!query_.inputs.empty(), "SPJ query needs at least one input");
  Schema combined = CombinedSchema(query_);
  if (query_.condition != nullptr) query_.condition->Validate(combined);
  if (query_.condition != nullptr && query_.condition->IsTriviallyFalse()) {
    return;
  }

  materialized_.resize(query_.inputs.size());
  class MaterializeSink final : public DeltaSink {
   public:
    MaterializeSink(PlanStats* stats,
                    std::vector<std::pair<Tuple, int64_t>>* out)
        : stats_(stats), out_(out) {}
    void Emit(const Tuple& t, int64_t c) override {
      if (stats_ != nullptr) ++stats_->rows_scanned;
      out_->emplace_back(t, c);
    }

   private:
    PlanStats* stats_;
    std::vector<std::pair<Tuple, int64_t>>* out_;
  };
  for (size_t i = 0; i < query_.inputs.size(); ++i) {
    MaterializeSink sink(stats_, &materialized_[i]);
    query_.inputs[i]->Scan(sink);
  }

  // The conjunctive core (atoms in every disjunct) drives decomposition;
  // disjunction is applied as a residual, exactly as in the planner.
  std::vector<Atom> core;
  bool need_residual = false;
  if (query_.condition != nullptr && !query_.condition->IsTriviallyTrue() &&
      !query_.condition->disjuncts().empty()) {
    const auto& disjuncts = query_.condition->disjuncts();
    for (const auto& atom : disjuncts.front().atoms) {
      bool everywhere = true;
      for (size_t d = 1; d < disjuncts.size(); ++d) {
        const auto& atoms = disjuncts[d].atoms;
        if (std::find(atoms.begin(), atoms.end(), atom) == atoms.end()) {
          everywhere = false;
          break;
        }
      }
      if (everywhere) core.push_back(atom);
    }
    need_residual = disjuncts.size() > 1;
  }

  std::vector<size_t> all_inputs(query_.inputs.size());
  for (size_t i = 0; i < all_inputs.size(); ++i) all_inputs[i] = i;
  SubResult solved = Solve(std::move(all_inputs), std::move(core));

  // Scatter each row's values into combined-tuple order.
  std::vector<size_t> offsets(query_.inputs.size());
  size_t offset = 0;
  for (size_t i = 0; i < query_.inputs.size(); ++i) {
    offsets[i] = offset;
    offset += query_.inputs[i]->schema().size();
  }
  std::vector<size_t> projection_indices;
  if (query_.projection.empty()) {
    projection_indices.resize(combined.size());
    for (size_t i = 0; i < combined.size(); ++i) projection_indices[i] = i;
  } else {
    combined.Project(query_.projection, &projection_indices);
  }

  for (const auto& [values, count] : solved.rows) {
    std::vector<Value> full(combined.size());
    size_t cursor = 0;
    for (size_t member : solved.members) {
      size_t arity = query_.inputs[member]->schema().size();
      for (size_t a = 0; a < arity; ++a) {
        full[offsets[member] + a] = values[cursor++];
      }
    }
    Tuple tuple(std::move(full));
    if (need_residual && !query_.condition->Evaluate(combined, tuple)) {
      continue;
    }
    if (stats_ != nullptr) ++stats_->output_tuples;
    out_->Add(tuple.Project(projection_indices), count * multiplier_);
  }
}

}  // namespace

void EvaluateSpjByDecomposition(const SpjQuery& query, CountedRelation* out,
                                int64_t multiplier, PlanStats* stats) {
  MVIEW_CHECK(out != nullptr, "null output relation");
  Decomposer decomposer(query, out, multiplier, stats);
  decomposer.Run();
}

CountedRelation EvaluateSpjByDecomposition(const SpjQuery& query,
                                           PlanStats* stats) {
  Schema combined = CombinedSchema(query);
  Schema out_schema = query.projection.empty()
                          ? combined
                          : combined.Project(query.projection);
  CountedRelation out(std::move(out_schema));
  EvaluateSpjByDecomposition(query, &out, 1, stats);
  return out;
}

}  // namespace mview
