#ifndef MVIEW_RA_DECOMPOSITION_H_
#define MVIEW_RA_DECOMPOSITION_H_

#include "ra/planner.h"

namespace mview {

/// QUEL-style decomposition evaluation of an SPJ query (Wong & Youssefi
/// [WY76], cited by Section 5.4 as a way to evaluate each truth-table
/// row's SPJ expression).
///
/// The algorithm alternates two reductions:
///  - **detachment**: inputs not linked by any condition atom form
///    independent components, evaluated separately and cross-multiplied;
///  - **tuple substitution**: within a component, the smallest input is
///    eliminated by substituting each of its tuples into the condition
///    (grounded atoms evaluate immediately and prune; half-grounded atoms
///    become constant restrictions on the remaining inputs) and recursing
///    on the reduced query.
///
/// Semantics are identical to `EvaluateSpjInto` (counting semantics,
/// residual DNF handling); the planner's hash/index joins are asymptotically
/// better on equi-joins, while decomposition shines when constant
/// propagation prunes aggressively.  Bench E13 compares them; the property
/// suite checks they agree.
void EvaluateSpjByDecomposition(const SpjQuery& query, CountedRelation* out,
                                int64_t multiplier = 1,
                                PlanStats* stats = nullptr);

/// Convenience wrapper returning a fresh relation.
CountedRelation EvaluateSpjByDecomposition(const SpjQuery& query,
                                           PlanStats* stats = nullptr);

}  // namespace mview

#endif  // MVIEW_RA_DECOMPOSITION_H_
