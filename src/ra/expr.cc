#include "ra/expr.h"

#include <sstream>

#include "predicate/parser.h"
#include "util/error.h"

namespace mview {
namespace {

ExprPtr Wrap(Expr* e) { return ExprPtr(e); }

}  // namespace

ExprPtr Expr::Base(std::string name) {
  auto* e = new Expr(Kind::kBase);
  e->base_name_ = std::move(name);
  return Wrap(e);
}

ExprPtr Expr::Select(ExprPtr input, Condition condition) {
  MVIEW_CHECK(input != nullptr, "null select input");
  auto* e = new Expr(Kind::kSelect);
  e->left_ = std::move(input);
  e->condition_ = std::move(condition);
  return Wrap(e);
}

ExprPtr Expr::Select(ExprPtr input, const std::string& condition) {
  return Select(std::move(input), ParseCondition(condition));
}

ExprPtr Expr::Project(ExprPtr input, std::vector<std::string> attributes) {
  MVIEW_CHECK(input != nullptr, "null project input");
  MVIEW_CHECK(!attributes.empty(), "projection needs attributes");
  auto* e = new Expr(Kind::kProject);
  e->left_ = std::move(input);
  e->attributes_ = std::move(attributes);
  return Wrap(e);
}

ExprPtr Expr::Product(ExprPtr left, ExprPtr right) {
  MVIEW_CHECK(left != nullptr && right != nullptr, "null product operand");
  auto* e = new Expr(Kind::kProduct);
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return Wrap(e);
}

ExprPtr Expr::NaturalJoin(ExprPtr left, ExprPtr right) {
  MVIEW_CHECK(left != nullptr && right != nullptr, "null join operand");
  auto* e = new Expr(Kind::kNaturalJoin);
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return Wrap(e);
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  MVIEW_CHECK(left != nullptr && right != nullptr, "null union operand");
  auto* e = new Expr(Kind::kUnion);
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return Wrap(e);
}

ExprPtr Expr::Difference(ExprPtr left, ExprPtr right) {
  MVIEW_CHECK(left != nullptr && right != nullptr, "null difference operand");
  auto* e = new Expr(Kind::kDifference);
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return Wrap(e);
}

ExprPtr Expr::Rename(ExprPtr input,
                     std::map<std::string, std::string> renames) {
  MVIEW_CHECK(input != nullptr, "null rename input");
  auto* e = new Expr(Kind::kRename);
  e->left_ = std::move(input);
  e->renames_ = std::move(renames);
  return Wrap(e);
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kBase:
      os << base_name_;
      break;
    case Kind::kSelect:
      os << "σ[" << condition_.ToString() << "](" << left_->ToString() << ")";
      break;
    case Kind::kProject: {
      os << "π{";
      for (size_t i = 0; i < attributes_.size(); ++i) {
        if (i > 0) os << ",";
        os << attributes_[i];
      }
      os << "}(" << left_->ToString() << ")";
      break;
    }
    case Kind::kProduct:
      os << "(" << left_->ToString() << " × " << right_->ToString() << ")";
      break;
    case Kind::kNaturalJoin:
      os << "(" << left_->ToString() << " ⋈ " << right_->ToString() << ")";
      break;
    case Kind::kUnion:
      os << "(" << left_->ToString() << " ∪ " << right_->ToString() << ")";
      break;
    case Kind::kDifference:
      os << "(" << left_->ToString() << " − " << right_->ToString() << ")";
      break;
    case Kind::kRename: {
      os << "ρ{";
      bool first = true;
      for (const auto& [from, to] : renames_) {
        if (!first) os << ",";
        first = false;
        os << from << "→" << to;
      }
      os << "}(" << left_->ToString() << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace mview
