#ifndef MVIEW_RA_EXPR_H_
#define MVIEW_RA_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "predicate/condition.h"

namespace mview {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A relational-algebra expression tree.
///
/// The paper's view class is SPJ (select–project–join over base relations);
/// `Expr` additionally offers union, difference, and rename so tests and
/// examples can state oracles like `(r − d) ⋈ s` directly.  SPJ-shaped trees
/// can be flattened into a `ViewDefinition` for registration with the
/// `ViewManager` (see `ivm/view_def.h`).
class Expr {
 public:
  enum class Kind {
    kBase,         // a named base relation
    kSelect,       // σ_C(input)
    kProject,      // π_X(input)
    kProduct,      // input × input (disjoint schemes)
    kNaturalJoin,  // input ⋈ input (on shared attribute names)
    kUnion,        // input ∪ input (counts add)
    kDifference,   // input − input (counts subtract)
    kRename,       // attribute renaming
  };

  /// References the base relation `name`.
  static ExprPtr Base(std::string name);

  /// σ_condition(input).
  static ExprPtr Select(ExprPtr input, Condition condition);

  /// σ of a parsed condition string (see `ParseCondition`).
  static ExprPtr Select(ExprPtr input, const std::string& condition);

  /// π_attributes(input), counting semantics (Section 5.2).
  static ExprPtr Project(ExprPtr input, std::vector<std::string> attributes);

  /// Cross product; the operand schemes must be attribute-disjoint.
  static ExprPtr Product(ExprPtr left, ExprPtr right);

  /// Natural join on the attributes the operand schemes share.
  static ExprPtr NaturalJoin(ExprPtr left, ExprPtr right);

  /// Multiset union (multiplicities add).
  static ExprPtr Union(ExprPtr left, ExprPtr right);

  /// Multiset difference (multiplicities subtract; throws below zero).
  static ExprPtr Difference(ExprPtr left, ExprPtr right);

  /// Renames attributes (`old → new`); unmentioned attributes keep their
  /// names.
  static ExprPtr Rename(ExprPtr input,
                        std::map<std::string, std::string> renames);

  Kind kind() const { return kind_; }
  const std::string& base_name() const { return base_name_; }
  const Condition& condition() const { return condition_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::map<std::string, std::string>& renames() const {
    return renames_;
  }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Renders as e.g. "π{A,D}(σ[A < 10](r × s))".
  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string base_name_;
  Condition condition_;
  std::vector<std::string> attributes_;
  std::map<std::string, std::string> renames_;
  ExprPtr left_;
  ExprPtr right_;
};

}  // namespace mview

#endif  // MVIEW_RA_EXPR_H_
