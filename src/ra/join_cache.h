#ifndef MVIEW_RA_JOIN_CACHE_H_
#define MVIEW_RA_JOIN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "predicate/condition.h"
#include "ra/planner.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace mview {

/// Cumulative work counters of one `JoinStateCache`; the differential
/// maintainer diffs them per round into `MaintenanceStats`.
struct JoinCacheCounters {
  int64_t hits = 0;        // Lookup returned a live entry
  int64_t misses = 0;      // a cold build had to install an entry
  int64_t evictions = 0;   // entries dropped to meet the byte budget
  int64_t delta_rows = 0;  // rows incrementally added/removed in entries
};

/// A cross-transaction cache of the filtered materializations and equi-join
/// hash tables (`PlannerCache::Table`) that the SPJ planner builds for the
/// *clean* part of a base relation.
///
/// The paper's differential step is O(|delta|) everywhere except here:
/// without this cache, every maintenance round re-scans and re-hashes the
/// full clean base into a fresh per-round `PlannerCache` — O(|base|) per
/// commit.  This cache keeps those tables alive across rounds and updates
/// them *with the same normalized per-base deltas the round already has*:
/// the transaction's deletes are removed when a round opens, its inserts
/// are added (through the entry's stored local filters) when it closes.
///
/// Keying and validity.  Entries are keyed by (slot, key_attrs), where
/// `slot` is the base-occurrence index within the owning view — a stable
/// identity, unlike the per-round `RelationInput*` the `PlannerCache` keys
/// on — and `key_attrs` are the hash-join key attributes (empty for plain
/// materializations).  Each entry carries the owning relation's
/// (`uid`, `version`) observed when it was last synchronized.  Because
/// normalized effects guarantee `inserts ∩ r = ∅` and `deletes ⊆ r`, the
/// post-round version is exactly `pre + |deletes| + |inserts|`, so the
/// entry's predicted version matches the relation iff the commit really
/// applied; aborted rounds, rejected transactions, and out-of-band
/// mutations all surface as a mismatch and the entry is lazily dropped
/// (cold rebuild) instead of serving stale rows.
///
/// Round protocol (driven by `DifferentialMaintainer::ComputeDelta`):
///   1. `BeginRound(slots)` — validate every entry against its relation's
///      current token, drop stale ones, then apply the round's *deletes* so
///      entries mirror the clean pre-state `r − d` the planner expects.
///   2. The planner calls `Peek`/`Lookup`/`Install`+`CompleteInstall`
///      through the `RelationInput` cache binding while evaluating the
///      delta rows.
///   3. `EndRound()` — apply the round's *inserts* (filtered through each
///      entry's stored local filters), stamp the predicted post-version,
///      and evict LRU entries down to the byte budget.
/// A round that never reaches `EndRound` (a failed commit) leaves its
/// touched entries marked in-round; the next `BeginRound` discards them.
///
/// Thread-safety: none.  Each `DifferentialMaintainer` owns its shards —
/// one per maintenance partition — and the commit pipeline runs at most
/// one worker per (view, partition) per commit, so entries are never
/// shared between threads.
class JoinStateCache {
 public:
  /// The per-base-occurrence state handed to `BeginRound`.
  struct SlotUpdate {
    uint64_t uid = 0;      // Relation::uid() of the occurrence's base
    uint64_t version = 0;  // Relation::version() before the round
    const Relation* deletes = nullptr;  // normalized, unfiltered; may be null
    const Relation* inserts = nullptr;  // normalized, unfiltered; may be null
  };

  /// Restricts a shard to one hash partition of keyed co-partitioned
  /// maintenance: entries hold only the rows whose slot key attribute
  /// hashes to `slice` (of `total`), and the round protocol filters the
  /// replayed deletes/inserts the same way.  The version stamp still uses
  /// the *full* delta sizes — it predicts the relation's post-commit
  /// version, which advances by every applied tuple regardless of
  /// partition.  The default spec (`total == 1`) means no filtering.
  struct PartitionSpec {
    uint32_t slice = 0;
    uint32_t total = 1;
    /// Per base-occurrence slot: the partition-key attribute index in the
    /// base's scheme (`kRowHashKey` for whole-tuple hashing).  May be
    /// empty when `total == 1`.
    std::vector<size_t> slot_key_attr;
  };

  explicit JoinStateCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}
  JoinStateCache(size_t budget_bytes, PartitionSpec spec)
      : budget_bytes_(budget_bytes), spec_(std::move(spec)) {}

  JoinStateCache(const JoinStateCache&) = delete;
  JoinStateCache& operator=(const JoinStateCache&) = delete;

  /// Opens a maintenance round: validates all entries, drops stale ones,
  /// and applies each touched slot's deletes.  An unfinished previous
  /// round is aborted first (its touched entries are discarded).
  void BeginRound(std::vector<SlotUpdate> slots);

  /// Closes the round: applies each touched slot's inserts, stamps
  /// predicted post-versions, and evicts down to the byte budget.
  void EndRound();

  /// True when a complete entry exists for (slot, key_attrs) — used by the
  /// planner's strategy choice without counting a hit or touching LRU.
  bool Peek(uint32_t slot, const std::vector<size_t>& key_attrs) const;

  /// Returns the live table for (slot, key_attrs) or nullptr.  Counts a
  /// hit and refreshes the entry's LRU position.  Only valid inside a
  /// round.
  PlannerCache::Table* Lookup(uint32_t slot,
                              const std::vector<size_t>& key_attrs);

  /// Starts installing a cold entry: returns an empty table for the caller
  /// to fill with the clean input's filtered rows, or nullptr when no
  /// round is active (caller falls back to its per-round cache).  `schema`
  /// and `filters` are the input's aliased scheme and the local filter
  /// atoms the caller applies while filling; the cache replays inserts
  /// through them on every future `EndRound`.  Counts a miss.
  PlannerCache::Table* Install(uint32_t slot,
                               const std::vector<size_t>& key_attrs,
                               const Schema& schema,
                               const std::vector<Atom>& filters);

  /// Finalizes the entry begun by `Install` (row accounting, reverse map
  /// for keyless entries, eviction).  Until this is called the entry is
  /// invisible to `Peek`/`Lookup` and dropped by the next `BeginRound`.
  void CompleteInstall(uint32_t slot, const std::vector<size_t>& key_attrs);

  /// Abandons an open round without applying inserts: the entries the
  /// round touched are discarded (their deletes were already applied, so
  /// they no longer mirror any consistent state).  Safe to call with no
  /// round open.  Exposed for the maintainer's exception path — a throw
  /// between `BeginRound` and `EndRound` must not leave the round open.
  void AbortRound();

  const JoinCacheCounters& counters() const { return counters_; }
  size_t bytes() const { return bytes_; }
  size_t entry_count() const { return entries_.size(); }
  size_t budget_bytes() const { return budget_bytes_; }
  bool round_active() const { return round_active_; }

 private:
  struct Entry {
    PlannerCache::Table table;
    Schema schema;              // aliased scheme of the cached input
    std::vector<Atom> filters;  // local filters applied at build time
    // Reverse map (full tuple → row index) for keyless entries only;
    // keyed entries locate rows through their own hash index.
    std::unordered_map<Tuple, size_t> row_of;
    uint64_t uid = 0;
    uint64_t version = 0;  // matching Relation::version() when !inround
    bool inround = false;  // deletes applied, inserts pending
    bool complete = false;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  using Key = std::pair<uint32_t, std::vector<size_t>>;

  void AddRow(Entry* entry, const Tuple& tuple);
  void RemoveRow(Entry* entry, const Tuple& tuple);
  void EvictToBudget(const Entry* keep);
  static size_t ApproxRowBytes(const Tuple& tuple);

  /// True when `tuple` belongs to this shard's partition for `slot`.
  bool InPartition(uint32_t slot, const Tuple& tuple) const;

  size_t budget_bytes_;
  PartitionSpec spec_;
  std::map<Key, std::unique_ptr<Entry>> entries_;
  std::vector<SlotUpdate> slots_;
  bool round_active_ = false;
  size_t bytes_ = 0;
  uint64_t tick_ = 0;
  JoinCacheCounters counters_;
};

}  // namespace mview

#endif  // MVIEW_RA_JOIN_CACHE_H_
