#include "ra/planner.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "ra/eval.h"
#include "ra/join_cache.h"
#include "util/arena.h"
#include "util/deadline.h"
#include "util/error.h"

namespace mview {

PlanStats& PlanStats::operator+=(const PlanStats& other) {
  rows_scanned += other.rows_scanned;
  probes += other.probes;
  intermediate_tuples += other.intermediate_tuples;
  output_tuples += other.output_tuples;
  return *this;
}

PlannerCache::Table* PlannerCache::Find(const RelationInput* input,
                                        const std::vector<size_t>& key) {
  auto it = tables_.find({input, key});
  if (it == tables_.end()) return nullptr;
  // A serial mismatch means the input this entry was built from was
  // destroyed and another now occupies its address — the cache outlived
  // its inputs, which release builds would answer with freed data.
  assert(it->second->debug_serial == input->debug_serial() &&
         "PlannerCache outlived the RelationInput it indexes");
  return it->second.get();
}

PlannerCache::Table* PlannerCache::Create(const RelationInput* input,
                                          const std::vector<size_t>& key) {
  auto table = std::make_unique<Table>();
  table->key_attrs = key;
  table->debug_serial = input->debug_serial();
  Table* raw = table.get();
  tables_[{input, key}] = std::move(table);
  return raw;
}

Schema CombinedSchema(const SpjQuery& query) {
  Schema combined;
  for (const auto* input : query.inputs) {
    combined = combined.Concat(input->schema());
  }
  return combined;
}

namespace {

// An equality join predicate `a.attr_a = b.attr_b + offset` between two
// inputs, extracted from the condition's conjunctive core.
struct JoinPred {
  size_t input_a = 0;
  size_t attr_a = 0;  // local attribute index within input_a
  size_t input_b = 0;
  size_t attr_b = 0;
  int64_t offset = 0;
};

// A cross-input core atom enforced once all its inputs are bound.
struct StepFilter {
  Atom atom;
  size_t last_input = 0;  // the step at which the atom becomes ground
};

struct PartialRow {
  std::vector<Value> vals;
  int64_t count = 1;
};

// A connecting equi-join predicate at one join step: bound side expressed
// as a combined-tuple index plus the offset to apply, local side as an
// attribute of the step's input.
struct Link {
  size_t bound_combined = 0;  // index of the bound value in the partial row
  size_t local_attr = 0;
  int64_t key_offset = 0;  // probe key = bound value + key_offset
};

class SpjExecutor {
 public:
  SpjExecutor(const SpjQuery& query, CountedRelation* out, int64_t multiplier,
              PlanStats* stats, PlannerCache* cache, const EvalContext* ctx)
      : query_(query),
        out_(out),
        multiplier_(multiplier),
        stats_(stats),
        cache_(cache),
        ctx_(ctx) {}

  void Run();

 private:
  struct InputInfo {
    const RelationInput* input = nullptr;
    size_t offset = 0;  // position of this input's attributes in the
                        // combined tuple
    size_t arity = 0;
    std::vector<Atom> local_filters;  // single-input core atoms
  };

  void Analyze();
  void ChooseOrder();
  bool PassesLocalFilters(const InputInfo& info, const Tuple& t) const;
  std::vector<Link> CollectLinks(size_t input_id) const;

  // Tuple-at-a-time backend.
  void RunTuple();
  void ExecuteFirst(std::vector<PartialRow>* rows);
  void ExecuteStep(size_t input_id, std::vector<PartialRow>* rows);
  void Emit(const PartialRow& row);

  // Columnar batch backend (see EvalContext); same plan, batch execution.
  void RunBatch();
  size_t BatchExecuteFirst(std::vector<ColumnBatch>* out);
  size_t BatchExecuteStep(size_t input_id, size_t total,
                          std::vector<ColumnBatch>* batches);
  void EmitBatches(std::vector<ColumnBatch>* batches);
  ColumnBatch& DestBatch(std::vector<ColumnBatch>* list);
  void FilterBatch(ColumnBatch* batch, const std::vector<BoundAtom>& filters);

  // Cooperative cancellation poll: free when no token rides the context,
  // one clock read per join step / batch when one does (the poll-point
  // contract in util/deadline.h).
  void PollCancel() const {
    if (ctx_ != nullptr && ctx_->cancel != nullptr) ctx_->cancel->Check();
  }

  // Returns the input owning `var` and its local attribute index.
  std::pair<size_t, size_t> Resolve(const std::string& var) const;

  PlannerCache::Table* MaterializeTable(size_t input_id,
                                        const std::vector<size_t>& key_attrs);
  void FillTable(const InputInfo& info, const std::vector<size_t>& key_attrs,
                 PlannerCache::Table* table);

  const SpjQuery& query_;
  CountedRelation* out_;
  int64_t multiplier_;
  PlanStats* stats_;
  PlannerCache* cache_;
  const EvalContext* ctx_;
  util::Arena* arena_ = nullptr;  // set when the batch backend runs
  // Owns tables when no external cache was supplied.
  PlannerCache local_cache_;

  Schema combined_;
  std::vector<InputInfo> inputs_;
  std::vector<JoinPred> join_preds_;
  std::vector<StepFilter> step_filters_;
  std::vector<size_t> order_;
  std::vector<bool> bound_;
  bool need_residual_ = false;
  std::vector<size_t> projection_indices_;
  PlanStats local_stats_;
  BatchEvalStats batch_stats_;
};

std::pair<size_t, size_t> SpjExecutor::Resolve(const std::string& var) const {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (auto idx = inputs_[i].input->schema().IndexOf(var)) return {i, *idx};
  }
  internal::ThrowError("condition variable not found in any input: ", var);
}

void SpjExecutor::Analyze() {
  MVIEW_CHECK(!query_.inputs.empty(), "SPJ query needs at least one input");
  inputs_.resize(query_.inputs.size());
  size_t offset = 0;
  for (size_t i = 0; i < query_.inputs.size(); ++i) {
    inputs_[i].input = query_.inputs[i];
    inputs_[i].offset = offset;
    inputs_[i].arity = query_.inputs[i]->schema().size();
    offset += inputs_[i].arity;
  }
  combined_ = CombinedSchema(query_);
  if (query_.condition != nullptr) query_.condition->Validate(combined_);

  if (query_.projection.empty()) {
    projection_indices_.resize(combined_.size());
    for (size_t i = 0; i < combined_.size(); ++i) projection_indices_[i] = i;
  } else {
    combined_.Project(query_.projection, &projection_indices_);
  }

  const Condition* cond = query_.condition;
  if (cond == nullptr || cond->IsTriviallyFalse() ||
      cond->disjuncts().empty()) {
    need_residual_ = cond != nullptr && cond->IsTriviallyFalse();
    return;
  }
  // The conjunctive core: atoms appearing in every disjunct.  These are
  // implied by the condition, so they can be enforced during the joins; the
  // full condition is re-checked as a residual only when disjunction makes
  // the core incomplete.
  std::vector<Atom> core;
  for (const auto& atom : cond->disjuncts().front().atoms) {
    bool everywhere = true;
    for (size_t d = 1; d < cond->disjuncts().size(); ++d) {
      const auto& atoms = cond->disjuncts()[d].atoms;
      if (std::find(atoms.begin(), atoms.end(), atom) == atoms.end()) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) core.push_back(atom);
  }
  need_residual_ = cond->disjuncts().size() > 1;

  for (const auto& atom : core) {
    auto [li, la] = Resolve(atom.lhs);
    if (!atom.rhs_var.has_value()) {
      Atom local = atom;  // names are shared with the input's scheme
      inputs_[li].local_filters.push_back(std::move(local));
      continue;
    }
    auto [ri, ra] = Resolve(*atom.rhs_var);
    if (li == ri) {
      inputs_[li].local_filters.push_back(atom);
      continue;
    }
    if (atom.op == CompareOp::kEq) {
      join_preds_.push_back({li, la, ri, ra, atom.offset});
    } else {
      step_filters_.push_back({atom, 0});  // step assigned after ordering
    }
  }
}

void SpjExecutor::ChooseOrder() {
  size_t n = inputs_.size();
  bound_.assign(n, false);
  order_.clear();
  order_.reserve(n);

  auto connected = [&](size_t candidate) {
    for (const auto& p : join_preds_) {
      if ((p.input_a == candidate && bound_[p.input_b]) ||
          (p.input_b == candidate && bound_[p.input_a])) {
        return true;
      }
    }
    return false;
  };

  // First input: the smallest.  Differential rows contain at least one tiny
  // delta input, so the pipeline starts from the delta (Section 5.3: "one
  // only needs to compute the contribution of the new tuples to the join").
  size_t first = 0;
  for (size_t i = 1; i < n; ++i) {
    if (inputs_[i].input->SizeHint() < inputs_[first].input->SizeHint()) {
      first = i;
    }
  }
  order_.push_back(first);
  bound_[first] = true;

  while (order_.size() < n) {
    std::optional<size_t> best;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (bound_[i]) continue;
      bool conn = connected(i);
      if (!best.has_value() || (conn && !best_connected) ||
          (conn == best_connected && inputs_[i].input->SizeHint() <
                                         inputs_[*best].input->SizeHint())) {
        best = i;
        best_connected = conn;
      }
    }
    order_.push_back(*best);
    bound_[*best] = true;
  }

  // Assign each step filter to the step where it becomes ground.
  std::vector<size_t> step_of(n, 0);
  for (size_t s = 0; s < order_.size(); ++s) step_of[order_[s]] = s;
  for (auto& f : step_filters_) {
    auto [li, la] = Resolve(f.atom.lhs);
    auto [ri, ra] = Resolve(*f.atom.rhs_var);
    (void)la;
    (void)ra;
    f.last_input = order_[std::max(step_of[li], step_of[ri])];
  }
}

bool SpjExecutor::PassesLocalFilters(const InputInfo& info,
                                     const Tuple& t) const {
  for (const auto& atom : info.local_filters) {
    if (!atom.Evaluate(info.input->schema(), t)) return false;
  }
  return true;
}

PlannerCache::Table* SpjExecutor::MaterializeTable(
    size_t input_id, const std::vector<size_t>& key_attrs) {
  const InputInfo& info = inputs_[input_id];
  // Cross-round path: a clean input bound to a `JoinStateCache` keeps its
  // table alive across maintenance rounds (keyed by its stable slot, not
  // this per-round input object) and only pays the full scan on a cold
  // miss; the cache replays later deltas into the installed table.
  if (JoinStateCache* jsc = info.input->join_cache()) {
    const uint32_t slot = info.input->cache_slot();
    if (PlannerCache::Table* warm = jsc->Lookup(slot, key_attrs)) return warm;
    if (PlannerCache::Table* table = jsc->Install(
            slot, key_attrs, info.input->schema(), info.local_filters)) {
      FillTable(info, key_attrs, table);
      jsc->CompleteInstall(slot, key_attrs);
      return table;
    }
    // No active round; fall through to the per-round cache.
  }
  PlannerCache* cache = cache_ != nullptr ? cache_ : &local_cache_;
  if (PlannerCache::Table* hit = cache->Find(info.input, key_attrs)) {
    return hit;
  }
  PlannerCache::Table* table = cache->Create(info.input, key_attrs);
  FillTable(info, key_attrs, table);
  return table;
}

void SpjExecutor::FillTable(const InputInfo& info,
                            const std::vector<size_t>& key_attrs,
                            PlannerCache::Table* table) {
  // Without local filters the input size is the exact row count; with
  // filters a full-size reserve could vastly overshoot the survivors.
  const Schema& schema = info.input->schema();
  table->int_keyed =
      key_attrs.size() == 1 &&
      schema.attribute(key_attrs[0]).type == ValueType::kInt64;
  table->all_int = true;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.attribute(i).type != ValueType::kInt64) {
      table->all_int = false;
      break;
    }
  }
  if (info.local_filters.empty()) {
    const size_t hint = info.input->SizeHint();
    table->rows.reserve(hint);
    if (!key_attrs.empty()) table->index.reserve(hint);
    if (table->int_keyed) table->int_index.reserve(hint);
    if (table->all_int) table->int_rows.reserve(hint * schema.size());
  }
  class BuildSink final : public DeltaSink {
   public:
    BuildSink(SpjExecutor* e, const InputInfo& info,
              const std::vector<size_t>& key_attrs, PlannerCache::Table* table)
        : e_(e), info_(info), key_attrs_(key_attrs), table_(table) {}
    void Emit(const Tuple& t, int64_t count) override {
      ++e_->local_stats_.rows_scanned;
      if (!e_->PassesLocalFilters(info_, t)) return;
      size_t row = table_->rows.size();
      table_->rows.emplace_back(t, count);
      if (table_->all_int) {
        for (size_t i = 0; i < info_.arity; ++i) {
          table_->int_rows.push_back(t.at(i).AsInt64());
        }
      }
      if (!key_attrs_.empty()) {
        if (table_->int_keyed) {
          table_->int_index[t.at(key_attrs_[0]).AsInt64()].push_back(row);
        }
        Tuple key = t.Project(key_attrs_);
        table_->index[std::move(key)].push_back(row);
      }
    }

   private:
    SpjExecutor* e_;
    const InputInfo& info_;
    const std::vector<size_t>& key_attrs_;
    PlannerCache::Table* table_;
  };
  BuildSink sink(this, info, key_attrs, table);
  info.input->Scan(sink);
}

void SpjExecutor::ExecuteFirst(std::vector<PartialRow>* rows) {
  PollCancel();
  size_t input_id = order_[0];
  const InputInfo& info = inputs_[input_id];
  class FirstSink final : public DeltaSink {
   public:
    FirstSink(SpjExecutor* e, const InputInfo& info,
              std::vector<PartialRow>* rows)
        : e_(e), info_(info), rows_(rows) {}
    void Emit(const Tuple& t, int64_t count) override {
      ++e_->local_stats_.rows_scanned;
      if (!e_->PassesLocalFilters(info_, t)) return;
      PartialRow row;
      row.vals.resize(e_->combined_.size());
      for (size_t i = 0; i < info_.arity; ++i) {
        row.vals[info_.offset + i] = t.at(i);
      }
      row.count = count;
      rows_->push_back(std::move(row));
    }

   private:
    SpjExecutor* e_;
    const InputInfo& info_;
    std::vector<PartialRow>* rows_;
  };
  FirstSink sink(this, info, rows);
  info.input->Scan(sink);
  local_stats_.intermediate_tuples += rows->size();
}

std::vector<Link> SpjExecutor::CollectLinks(size_t input_id) const {
  std::vector<Link> links;
  for (const auto& p : join_preds_) {
    if (p.input_a == input_id && bound_[p.input_b]) {
      // this.attr_a = bound.attr_b + offset → key = bound + offset
      links.push_back(
          {inputs_[p.input_b].offset + p.attr_b, p.attr_a, p.offset});
    } else if (p.input_b == input_id && bound_[p.input_a]) {
      // bound.attr_a = this.attr_b + offset → key = bound − offset
      links.push_back(
          {inputs_[p.input_a].offset + p.attr_a, p.attr_b, -p.offset});
    }
  }
  return links;
}

void SpjExecutor::ExecuteStep(size_t input_id, std::vector<PartialRow>* rows) {
  PollCancel();
  const InputInfo& info = inputs_[input_id];
  std::vector<Link> links = CollectLinks(input_id);
  // Step filters that become ground at this step.
  std::vector<const Atom*> filters;
  for (const auto& f : step_filters_) {
    if (f.last_input == input_id) filters.push_back(&f.atom);
  }

  std::vector<PartialRow> next;

  auto emit_match = [&](const PartialRow& row, const Tuple& t, int64_t count) {
    PartialRow merged;
    merged.vals = row.vals;
    for (size_t i = 0; i < info.arity; ++i) {
      merged.vals[info.offset + i] = t.at(i);
    }
    merged.count = row.count * count;  // Section 5.2: join multiplies counts
    if (!filters.empty()) {
      Tuple view(std::vector<Value>(merged.vals));
      for (const Atom* atom : filters) {
        if (!atom->Evaluate(combined_, view)) return;
      }
    }
    next.push_back(std::move(merged));
  };

  auto compute_key = [&](const PartialRow& row, const Link& link) {
    const Value& bound_val = row.vals[link.bound_combined];
    if (link.key_offset == 0) return bound_val;
    return Value(bound_val.AsInt64() + link.key_offset);
  };

  auto check_links = [&](const PartialRow& row, const Tuple& t,
                         size_t skip_link) {
    for (size_t li = 0; li < links.size(); ++li) {
      if (li == skip_link) continue;
      if (t.at(links[li].local_attr) != compute_key(row, links[li])) {
        return false;
      }
    }
    return true;
  };

  // Strategy selection: index join when the input exposes an index on a
  // connecting attribute and is large; otherwise hash join on all
  // connecting attributes; cross join when nothing connects.  A warm
  // persistent table beats an index-probe plan — its build is already paid
  // for and its rows are pre-filtered — so peek before deciding.
  std::vector<size_t> key_attrs;
  key_attrs.reserve(links.size());
  for (const auto& l : links) key_attrs.push_back(l.local_attr);

  std::optional<size_t> probe_link;
  for (size_t li = 0; li < links.size(); ++li) {
    if (info.input->CanProbe(links[li].local_attr)) {
      probe_link = li;
      break;
    }
  }
  bool warm = false;
  if (JoinStateCache* jsc = info.input->join_cache();
      jsc != nullptr && !links.empty()) {
    warm = jsc->Peek(info.input->cache_slot(), key_attrs);
  }
  bool use_index = !warm && probe_link.has_value() &&
                   info.input->SizeHint() > rows->size();

  if (!links.empty() && !use_index) {
    PlannerCache::Table* table = MaterializeTable(input_id, key_attrs);
    // One scratch key reused across probes: assigning into its values
    // recycles their string capacity instead of materializing a fresh
    // tuple (and fresh strings) per probe.
    Tuple probe_key(std::vector<Value>(links.size()));
    for (const auto& row : *rows) {
      auto& key_vals = probe_key.mutable_values();
      for (size_t li = 0; li < links.size(); ++li) {
        const Link& l = links[li];
        const Value& bound_val = row.vals[l.bound_combined];
        if (l.key_offset == 0) {
          key_vals[li] = bound_val;
        } else {
          key_vals[li] = Value(bound_val.AsInt64() + l.key_offset);
        }
      }
      auto hit = table->index.find(probe_key);
      if (hit == table->index.end()) continue;
      for (size_t idx : hit->second) {
        const auto& [t, count] = table->rows[idx];
        emit_match(row, t, count);
      }
    }
  } else if (use_index) {
    const Link& link = links[*probe_link];
    // A reusable stack sink: the per-probe state is one pointer assignment
    // (`row_`), not a fresh closure per probe.
    class ProbeSink final : public DeltaSink {
     public:
      ProbeSink(SpjExecutor* e, const InputInfo& info,
                decltype(check_links)& check, decltype(emit_match)& emit,
                size_t skip_link)
          : e_(e), info_(info), check_(check), emit_(emit),
            skip_link_(skip_link) {}
      void Emit(const Tuple& t, int64_t count) override {
        if (!e_->PassesLocalFilters(info_, t)) return;
        if (!check_(*row_, t, skip_link_)) return;
        emit_(*row_, t, count);
      }
      const PartialRow* row_ = nullptr;

     private:
      SpjExecutor* e_;
      const InputInfo& info_;
      decltype(check_links)& check_;
      decltype(emit_match)& emit_;
      size_t skip_link_;
    };
    ProbeSink sink(this, info, check_links, emit_match, *probe_link);
    for (const auto& row : *rows) {
      ++local_stats_.probes;
      sink.row_ = &row;
      info.input->ProbeEqual(link.local_attr, compute_key(row, link), sink);
    }
  } else {
    // Cross join against the (cached) materialized input.
    PlannerCache::Table* table = MaterializeTable(input_id, {});
    for (const auto& row : *rows) {
      for (const auto& [t, count] : table->rows) {
        emit_match(row, t, count);
      }
    }
  }

  local_stats_.intermediate_tuples += next.size();
  rows->swap(next);
}

void SpjExecutor::Emit(const PartialRow& row) {
  Tuple full(std::vector<Value>(row.vals));
  if (need_residual_ && query_.condition != nullptr &&
      !query_.condition->Evaluate(combined_, full)) {
    return;
  }
  ++local_stats_.output_tuples;
  out_->Add(full.Project(projection_indices_), row.count * multiplier_);
}

void SpjExecutor::Run() {
  Analyze();
  if (query_.condition != nullptr && query_.condition->IsTriviallyFalse()) {
    return;  // σ_false(...) is empty
  }
  ChooseOrder();

  // Re-run the binding order, marking inputs bound step by step so that
  // each join step sees the correct bound set.
  bound_.assign(inputs_.size(), false);
  if (ctx_ != nullptr && ctx_->enable_batch && ctx_->arena != nullptr) {
    arena_ = ctx_->arena;
    RunBatch();
    if (ctx_->batch_stats != nullptr) *ctx_->batch_stats += batch_stats_;
  } else {
    RunTuple();
  }
  if (stats_ != nullptr) *stats_ += local_stats_;
}

void SpjExecutor::RunTuple() {
  std::vector<PartialRow> rows;
  ExecuteFirst(&rows);
  bound_[order_[0]] = true;
  for (size_t s = 1; s < order_.size() && !rows.empty(); ++s) {
    ExecuteStep(order_[s], &rows);
    bound_[order_[s]] = true;
  }
  if (order_.size() == 1 || !rows.empty()) {
    for (const auto& row : rows) Emit(row);
  }
}

// ---------------------------------------------------------------------------
// The columnar batch backend.  Same plan (Analyze/ChooseOrder), same join
// strategies per step (warm-peek → hash probe, index probe, cross join),
// same counting semantics — but intermediate rows live in combined-scheme
// `ColumnBatch` chunks carved from the round arena instead of per-row
// heap-allocated `vector<Value>`s, selections run as kernels producing
// selection vectors, and the final projection is a column shuffle.

ColumnBatch& SpjExecutor::DestBatch(std::vector<ColumnBatch>* list) {
  if (list->empty() || list->back().full()) {
    PollCancel();  // one relaxed check per allocated batch, never per row
    list->emplace_back(combined_, ColumnBatch::kDefaultCapacity, arena_);
    ++batch_stats_.batches;
  }
  return list->back();
}

void SpjExecutor::FilterBatch(ColumnBatch* batch,
                              const std::vector<BoundAtom>& filters) {
  if (filters.empty() || batch->empty()) return;
  uint32_t* sel = arena_->AllocateArray<uint32_t>(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) sel[i] = static_cast<uint32_t>(i);
  const size_t n = SelectConjunction(*batch, filters, sel, batch->size());
  batch->Keep(sel, n);
}

size_t SpjExecutor::BatchExecuteFirst(std::vector<ColumnBatch>* out) {
  PollCancel();
  const size_t input_id = order_[0];
  const InputInfo& info = inputs_[input_id];
  // Local filters bound to this input's columns inside the combined batch.
  std::vector<BoundAtom> filters;
  filters.reserve(info.local_filters.size());
  for (const Atom& atom : info.local_filters) {
    filters.push_back(BindAtom(atom, info.input->schema(), info.offset));
  }

  // Appends every scanned row, running the selection kernel over each chunk
  // as it fills (and once more over the final partial chunk).
  class ScanSink final : public DeltaSink {
   public:
    ScanSink(SpjExecutor* e, std::vector<ColumnBatch>* out,
             const InputInfo& info, const std::vector<BoundAtom>& filters)
        : e_(e), out_(out), info_(info), filters_(filters) {}
    void Emit(const Tuple& t, int64_t count) override {
      ++e_->local_stats_.rows_scanned;
      ColumnBatch& batch = e_->DestBatch(out_);
      batch.AppendTuple(t, count, info_.offset);
      if (batch.full()) e_->FilterBatch(&batch, filters_);
    }

   private:
    SpjExecutor* e_;
    std::vector<ColumnBatch>* out_;
    const InputInfo& info_;
    const std::vector<BoundAtom>& filters_;
  };
  ScanSink sink(this, out, info, filters);
  info.input->Scan(sink);
  if (!out->empty()) FilterBatch(&out->back(), filters);

  size_t total = 0;
  for (const ColumnBatch& b : *out) total += b.size();
  local_stats_.intermediate_tuples += static_cast<int64_t>(total);
  batch_stats_.rows += static_cast<int64_t>(total);
  return total;
}

size_t SpjExecutor::BatchExecuteStep(size_t input_id, size_t total,
                                     std::vector<ColumnBatch>* batches) {
  PollCancel();
  const InputInfo& info = inputs_[input_id];
  std::vector<Link> links = CollectLinks(input_id);
  // Step filters that become ground at this step, bound to the combined
  // scheme.
  std::vector<BoundAtom> filters;
  for (const auto& f : step_filters_) {
    if (f.last_input == input_id) filters.push_back(BindAtom(f.atom, combined_));
  }
  // Column ranges of the inputs already bound — the only columns of a
  // source row that hold live data and must be carried into merged rows.
  std::vector<std::pair<size_t, size_t>> bound_ranges;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (bound_[i]) bound_ranges.emplace_back(inputs_[i].offset, inputs_[i].arity);
  }

  std::vector<ColumnBatch> next;
  size_t next_total = 0;

  // Appends the merge of a source row with a matched tuple, then applies
  // the step filters to the merged row, abandoning it on failure.  When the
  // matched row comes from an all-int table, `int_row` points at its flat
  // mirror and the values are copied as raw words instead of variant reads.
  auto emit_merged = [&](const ColumnBatch& src, size_t src_row,
                         const Tuple& t, int64_t count,
                         const int64_t* int_row) {
    ColumnBatch& dst = DestBatch(&next);
    const size_t row = dst.AppendRow(src.counts()[src_row] * count);
    for (const auto& [off, arity] : bound_ranges) {
      dst.CopyRow(src, src_row, row, off, arity);
    }
    if (int_row != nullptr) {
      for (size_t i = 0; i < info.arity; ++i) {
        dst.ints(info.offset + i)[row] = int_row[i];
      }
    } else {
      dst.SetFromTuple(row, t, info.offset);
    }
    for (const BoundAtom& atom : filters) {
      if (!EvalBoundAtom(dst, row, atom)) {
        dst.Truncate(row);
        return;
      }
    }
    ++next_total;
  };

  // The probe key of `link` for a source row, with the link's offset
  // applied (offsets only arise on integer attributes).
  auto key_value = [&](const ColumnBatch& src, size_t row, const Link& link) {
    if (src.column_type(link.bound_combined) == ValueType::kInt64) {
      return Value(src.ints(link.bound_combined)[row] + link.key_offset);
    }
    return Value(*src.strs(link.bound_combined)[row]);
  };

  auto check_links = [&](const ColumnBatch& src, size_t row, const Tuple& t,
                         size_t skip_link) {
    for (size_t li = 0; li < links.size(); ++li) {
      if (li == skip_link) continue;
      const Link& l = links[li];
      const Value& tv = t.at(l.local_attr);
      if (src.column_type(l.bound_combined) == ValueType::kInt64) {
        if (tv.AsInt64() != src.ints(l.bound_combined)[row] + l.key_offset) {
          return false;
        }
      } else if (tv.AsString() != *src.strs(l.bound_combined)[row]) {
        return false;
      }
    }
    return true;
  };

  // Strategy selection mirrors the tuple path exactly (including the
  // warm-table peek), so both backends materialize the same cache state.
  std::vector<size_t> key_attrs;
  key_attrs.reserve(links.size());
  for (const auto& l : links) key_attrs.push_back(l.local_attr);

  std::optional<size_t> probe_link;
  for (size_t li = 0; li < links.size(); ++li) {
    if (info.input->CanProbe(links[li].local_attr)) {
      probe_link = li;
      break;
    }
  }
  bool warm = false;
  if (JoinStateCache* jsc = info.input->join_cache();
      jsc != nullptr && !links.empty()) {
    warm = jsc->Peek(info.input->cache_slot(), key_attrs);
  }
  bool use_index =
      !warm && probe_link.has_value() && info.input->SizeHint() > total;

  if (!links.empty() && !use_index) {
    PlannerCache::Table* table = MaterializeTable(input_id, key_attrs);
    const bool int_probe =
        table->int_keyed && !batches->empty() &&
        batches->front().column_type(links[0].bound_combined) ==
            ValueType::kInt64;
    const int64_t* mirror = table->all_int ? table->int_rows.data() : nullptr;
    if (int_probe) {
      // Raw-key fast path: the probe key is one int64 read straight from
      // the column, hashed without building a key tuple.
      const Link& link = links[0];
      for (const ColumnBatch& src : *batches) {
        const int64_t* keys = src.ints(link.bound_combined);
        for (size_t r = 0; r < src.size(); ++r) {
          auto hit = table->int_index.find(keys[r] + link.key_offset);
          if (hit == table->int_index.end()) continue;
          for (size_t idx : hit->second) {
            const auto& [t, count] = table->rows[idx];
            emit_merged(src, r, t, count,
                        mirror != nullptr ? mirror + idx * info.arity
                                          : nullptr);
          }
        }
      }
    } else {
      // One scratch key reused across probes, as in the tuple path.
      Tuple probe_key(std::vector<Value>(links.size()));
      for (const ColumnBatch& src : *batches) {
        for (size_t r = 0; r < src.size(); ++r) {
          auto& key_vals = probe_key.mutable_values();
          for (size_t li = 0; li < links.size(); ++li) {
            key_vals[li] = key_value(src, r, links[li]);
          }
          auto hit = table->index.find(probe_key);
          if (hit == table->index.end()) continue;
          for (size_t idx : hit->second) {
            const auto& [t, count] = table->rows[idx];
            emit_merged(src, r, t, count,
                        mirror != nullptr ? mirror + idx * info.arity
                                          : nullptr);
          }
        }
      }
    }
  } else if (use_index) {
    const Link& link = links[*probe_link];
    // Per-probe state is two plain assignments (`src_`, `row_`) — the old
    // `std::function on_match_` reassignment allocated a fresh closure per
    // probe.
    class ProbeSink final : public DeltaSink {
     public:
      ProbeSink(SpjExecutor* e, const InputInfo& info,
                decltype(check_links)& check, decltype(emit_merged)& emit,
                size_t skip_link)
          : e_(e), info_(info), check_(check), emit_(emit),
            skip_link_(skip_link) {}
      void Emit(const Tuple& t, int64_t count) override {
        if (!e_->PassesLocalFilters(info_, t)) return;
        if (!check_(*src_, row_, t, skip_link_)) return;
        emit_(*src_, row_, t, count, nullptr);
      }
      const ColumnBatch* src_ = nullptr;
      size_t row_ = 0;

     private:
      SpjExecutor* e_;
      const InputInfo& info_;
      decltype(check_links)& check_;
      decltype(emit_merged)& emit_;
      size_t skip_link_;
    };
    ProbeSink sink(this, info, check_links, emit_merged, *probe_link);
    for (const ColumnBatch& src : *batches) {
      sink.src_ = &src;
      for (size_t r = 0; r < src.size(); ++r) {
        ++local_stats_.probes;
        sink.row_ = r;
        info.input->ProbeEqual(link.local_attr, key_value(src, r, link), sink);
      }
    }
  } else {
    // Cross join against the (cached) materialized input.
    PlannerCache::Table* table = MaterializeTable(input_id, {});
    const int64_t* mirror = table->all_int ? table->int_rows.data() : nullptr;
    for (const ColumnBatch& src : *batches) {
      for (size_t r = 0; r < src.size(); ++r) {
        for (size_t idx = 0; idx < table->rows.size(); ++idx) {
          const auto& [t, count] = table->rows[idx];
          emit_merged(src, r, t, count,
                      mirror != nullptr ? mirror + idx * info.arity : nullptr);
        }
      }
    }
  }

  local_stats_.intermediate_tuples += static_cast<int64_t>(next_total);
  batch_stats_.rows += static_cast<int64_t>(next_total);
  batches->swap(next);
  return next_total;
}

void SpjExecutor::EmitBatches(std::vector<ColumnBatch>* batches) {
  BoundDnf residual;
  if (need_residual_ && query_.condition != nullptr) {
    residual = BindCondition(*query_.condition, combined_);
  }
  CountedRelationSink sink(out_, multiplier_);
  for (ColumnBatch& batch : *batches) {
    if (batch.empty()) continue;
    if (need_residual_) {
      uint32_t* sel = arena_->AllocateArray<uint32_t>(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        sel[i] = static_cast<uint32_t>(i);
      }
      batch.Keep(sel, SelectDnf(batch, residual, sel, batch.size()));
      if (batch.empty()) continue;
    }
    local_stats_.output_tuples += static_cast<int64_t>(batch.size());
    // Projection is a column shuffle: the emitted view aliases the batch's
    // arrays — no row data moves until the sink materializes tuples.
    sink.EmitBatch(batch.ProjectView(projection_indices_, arena_));
  }
}

void SpjExecutor::RunBatch() {
  std::vector<ColumnBatch> batches;
  size_t total = BatchExecuteFirst(&batches);
  bound_[order_[0]] = true;
  for (size_t s = 1; s < order_.size() && total > 0; ++s) {
    total = BatchExecuteStep(order_[s], total, &batches);
    bound_[order_[s]] = true;
  }
  EmitBatches(&batches);
}

}  // namespace

void EvaluateSpjInto(const SpjQuery& query, CountedRelation* out,
                     int64_t multiplier, PlanStats* stats, PlannerCache* cache,
                     const EvalContext* ctx) {
  MVIEW_CHECK(out != nullptr, "null output relation");
  SpjExecutor executor(query, out, multiplier, stats, cache, ctx);
  executor.Run();
}

CountedRelation EvaluateSpj(const SpjQuery& query, PlanStats* stats,
                            PlannerCache* cache) {
  Schema combined = CombinedSchema(query);
  Schema out_schema = query.projection.empty()
                          ? combined
                          : combined.Project(query.projection);
  CountedRelation out(std::move(out_schema));
  EvaluateSpjInto(query, &out, 1, stats, cache);
  return out;
}

}  // namespace mview
