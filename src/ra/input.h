#ifndef MVIEW_RA_INPUT_H_
#define MVIEW_RA_INPUT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ra/batch.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace mview {

class JoinStateCache;

/// A read-only stream of counted tuples feeding the SPJ planner.
///
/// Differential re-evaluation joins *parts* of relations (Section 5.3): the
/// old tuples of `r`, the tuples being deleted (`d_r`), the tuples being
/// inserted (`i_r`), or an old state reconstructed from the current one.
/// `RelationInput` abstracts over these so one planner serves full
/// re-evaluation, per-transaction deltas, and deferred snapshot refresh.
///
/// Streams flow into `DeltaSink`s (ra/batch.h): `Scan` and `ProbeEqual`
/// take the sink interface — one devirtualizable call per row instead of a
/// `std::function` dispatch.  Callers that used to pass closures implement
/// small stack-allocated sinks instead.
///
/// Inputs may expose their scheme under *aliases* (view definitions rename
/// attributes to keep them unique across the view's base relations); the
/// aliased scheme is what `schema()` reports.
class RelationInput {
 public:
  RelationInput();
  virtual ~RelationInput() = default;

  /// The (possibly aliased) scheme of the streamed tuples.
  virtual const Schema& schema() const = 0;

  /// Approximate number of tuples, used by the greedy join-order heuristic.
  virtual size_t SizeHint() const = 0;

  /// Streams every tuple with its multiplicity into `sink`.
  virtual void Scan(DeltaSink& sink) const = 0;

  /// Returns true when `ProbeEqual` is supported on attribute `attr`.
  virtual bool CanProbe(size_t attr) const;

  /// Streams the tuples whose attribute `attr` equals `key` (index join).
  virtual void ProbeEqual(size_t attr, const Value& key,
                          DeltaSink& sink) const;

  /// Attaches this input to slot `slot` of a cross-transaction join-state
  /// cache.  The planner materializes a bound input through the cache —
  /// keyed by the stable slot identity rather than this (per-round) object
  /// — instead of rebuilding its hash table from scratch.  Only the *clean*
  /// inputs of a maintenance round are ever bound.
  void BindJoinCache(JoinStateCache* cache, uint32_t slot) {
    join_cache_ = cache;
    cache_slot_ = slot;
  }
  JoinStateCache* join_cache() const { return join_cache_; }
  uint32_t cache_slot() const { return cache_slot_; }

  /// A process-unique serial stamped at construction; `PlannerCache`
  /// records it so debug builds can assert an entry's input pointer was
  /// not freed and reused (pointer-keyed caches dangle silently otherwise).
  uint64_t debug_serial() const { return debug_serial_; }

 private:
  JoinStateCache* join_cache_ = nullptr;
  uint32_t cache_slot_ = 0;
  uint64_t debug_serial_ = 0;
};

/// The whole contents of a set-semantics `Relation` (multiplicity 1).
class FullRelationInput : public RelationInput {
 public:
  /// Streams `relation`, reporting `schema` (an aliased copy of the
  /// relation's scheme; pass `relation->schema()` when no renaming applies).
  FullRelationInput(const Relation* relation, Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override { return relation_->size(); }
  void Scan(DeltaSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  DeltaSink& sink) const override;

 private:
  const Relation* relation_;
  Schema schema_;
};

/// A set difference `relation − minus`, streamed without materializing.
///
/// This is the "clean old" part of a modified relation (`r − d_r`) and the
/// reconstructed pre-state used by snapshot refresh (`r_now − i_r`).  Index
/// probes delegate to `relation` and filter out `minus` tuples.
class SubtractRelationInput : public RelationInput {
 public:
  SubtractRelationInput(const Relation* relation, const Relation* minus,
                        Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override;
  void Scan(DeltaSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  DeltaSink& sink) const override;

 private:
  const Relation* relation_;
  const Relation* minus_;
  Schema schema_;
};

/// The contents of a `CountedRelation` (deltas, intermediates, view states).
class CountedRelationInput : public RelationInput {
 public:
  CountedRelationInput(const CountedRelation* relation, Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override { return relation_->size(); }
  void Scan(DeltaSink& sink) const override;

 private:
  const CountedRelation* relation_;
  Schema schema_;
};

/// A small delta relation exposed with *lazy* per-attribute hash indexes.
///
/// The telescoped strategy anchors each term at a delta and probes it via
/// `ConcatRelationInput`, which is probe-capable only when both parts are.
/// Copying the delta and eagerly rebuilding the base relation's indexes on
/// it (the old approach) costs O(|delta| · indexes) per term per round;
/// this input instead claims probe support on every attribute and builds a
/// single-attribute index the first time one is actually probed.
///
/// Thread-safety: the lazy indexes mutate on first probe, so an instance
/// must stay confined to the maintenance round (and thread) that created
/// it — the same lifetime delta inputs already have.
class DeltaIndexInput : public RelationInput {
 public:
  DeltaIndexInput(const Relation* relation, Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override { return relation_->size(); }
  void Scan(DeltaSink& sink) const override;
  bool CanProbe(size_t) const override { return true; }
  void ProbeEqual(size_t attr, const Value& key,
                  DeltaSink& sink) const override;

 private:
  using LazyIndex = std::unordered_map<Value, std::vector<const Tuple*>>;

  const Relation* relation_;
  Schema schema_;
  mutable std::unordered_map<size_t, LazyIndex> indexes_;
};

/// A union of two parts streamed in sequence (e.g. the reconstructed old
/// state `(r_now − i) ∪ d` used by deferred refresh).  The parts must have
/// equal schemes and be disjoint.
class ConcatRelationInput : public RelationInput {
 public:
  ConcatRelationInput(const RelationInput* first, const RelationInput* second);

  const Schema& schema() const override { return first_->schema(); }
  size_t SizeHint() const override;
  void Scan(DeltaSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  DeltaSink& sink) const override;

 private:
  const RelationInput* first_;
  const RelationInput* second_;
};

/// One hash partition of `(relation − minus)`: streams the tuples whose
/// partition (hash of the attribute at `key_attr`, or of the whole tuple
/// for `kRowHashKey`, modulo `total`) equals `slice`.
///
/// This is the clean input of keyed co-partitioned maintenance — each
/// partition's evaluation sees only its 1/P slice of the base — and the
/// scrubber's partition-at-a-time full evaluation (which slices base 0 by
/// row hash; any disjoint decomposition of one input partitions the join's
/// output, by linearity).  `minus` may be null.  Index probes delegate to
/// the underlying relation and filter by partition and `minus`.
class PartitionSliceInput : public RelationInput {
 public:
  PartitionSliceInput(const Relation* relation, Schema schema,
                      const Relation* minus, size_t key_attr, uint32_t slice,
                      uint32_t total);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override;
  void Scan(DeltaSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  DeltaSink& sink) const override;

 private:
  bool InSlice(const Tuple& t) const;

  const Relation* relation_;
  const Relation* minus_;  // may be null
  Schema schema_;
  size_t key_attr_;
  uint32_t slice_;
  uint32_t total_;
};

}  // namespace mview

#endif  // MVIEW_RA_INPUT_H_
