#ifndef MVIEW_RA_INPUT_H_
#define MVIEW_RA_INPUT_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace mview {

/// Callback receiving a tuple and its multiplicity.
using TupleSink = std::function<void(const Tuple&, int64_t)>;

/// A read-only stream of counted tuples feeding the SPJ planner.
///
/// Differential re-evaluation joins *parts* of relations (Section 5.3): the
/// old tuples of `r`, the tuples being deleted (`d_r`), the tuples being
/// inserted (`i_r`), or an old state reconstructed from the current one.
/// `RelationInput` abstracts over these so one planner serves full
/// re-evaluation, per-transaction deltas, and deferred snapshot refresh.
///
/// Inputs may expose their scheme under *aliases* (view definitions rename
/// attributes to keep them unique across the view's base relations); the
/// aliased scheme is what `schema()` reports.
class RelationInput {
 public:
  virtual ~RelationInput() = default;

  /// The (possibly aliased) scheme of the streamed tuples.
  virtual const Schema& schema() const = 0;

  /// Approximate number of tuples, used by the greedy join-order heuristic.
  virtual size_t SizeHint() const = 0;

  /// Invokes `sink` for every tuple with its multiplicity.
  virtual void Scan(const TupleSink& sink) const = 0;

  /// Returns true when `ProbeEqual` is supported on attribute `attr`.
  virtual bool CanProbe(size_t attr) const;

  /// Streams the tuples whose attribute `attr` equals `key` (index join).
  virtual void ProbeEqual(size_t attr, const Value& key,
                          const TupleSink& sink) const;
};

/// The whole contents of a set-semantics `Relation` (multiplicity 1).
class FullRelationInput : public RelationInput {
 public:
  /// Streams `relation`, reporting `schema` (an aliased copy of the
  /// relation's scheme; pass `relation->schema()` when no renaming applies).
  FullRelationInput(const Relation* relation, Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override { return relation_->size(); }
  void Scan(const TupleSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  const TupleSink& sink) const override;

 private:
  const Relation* relation_;
  Schema schema_;
};

/// A set difference `relation − minus`, streamed without materializing.
///
/// This is the "clean old" part of a modified relation (`r − d_r`) and the
/// reconstructed pre-state used by snapshot refresh (`r_now − i_r`).  Index
/// probes delegate to `relation` and filter out `minus` tuples.
class SubtractRelationInput : public RelationInput {
 public:
  SubtractRelationInput(const Relation* relation, const Relation* minus,
                        Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override;
  void Scan(const TupleSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  const TupleSink& sink) const override;

 private:
  const Relation* relation_;
  const Relation* minus_;
  Schema schema_;
};

/// The contents of a `CountedRelation` (deltas, intermediates, view states).
class CountedRelationInput : public RelationInput {
 public:
  CountedRelationInput(const CountedRelation* relation, Schema schema);

  const Schema& schema() const override { return schema_; }
  size_t SizeHint() const override { return relation_->size(); }
  void Scan(const TupleSink& sink) const override;

 private:
  const CountedRelation* relation_;
  Schema schema_;
};

/// A union of two parts streamed in sequence (e.g. the reconstructed old
/// state `(r_now − i) ∪ d` used by deferred refresh).  The parts must have
/// equal schemes and be disjoint.
class ConcatRelationInput : public RelationInput {
 public:
  ConcatRelationInput(const RelationInput* first, const RelationInput* second);

  const Schema& schema() const override { return first_->schema(); }
  size_t SizeHint() const override;
  void Scan(const TupleSink& sink) const override;
  bool CanProbe(size_t attr) const override;
  void ProbeEqual(size_t attr, const Value& key,
                  const TupleSink& sink) const override;

 private:
  const RelationInput* first_;
  const RelationInput* second_;
};

}  // namespace mview

#endif  // MVIEW_RA_INPUT_H_
