#ifndef MVIEW_RA_PLANNER_H_
#define MVIEW_RA_PLANNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "predicate/condition.h"
#include "ra/input.h"
#include "relational/relation.h"

namespace mview {

namespace util {
class Arena;
class Cancellation;
}  // namespace util

/// A select–project–join query over a list of inputs:
/// `π_projection(σ_condition(inputs[0] × inputs[1] × … ))`.
///
/// The combined scheme is the concatenation of the input schemes (attribute
/// names must be unique across inputs, as in the paper's Definition 4.3);
/// the condition and projection refer to it by name.  A null condition means
/// `true`; an empty projection keeps all attributes.
struct SpjQuery {
  std::vector<const RelationInput*> inputs;
  const Condition* condition = nullptr;
  std::vector<std::string> projection;
};

/// Counters describing how much work a plan performed; the benchmark
/// harness aggregates these to report the paper's cost comparisons in
/// machine-independent units as well as wall-clock time.
struct PlanStats {
  int64_t rows_scanned = 0;         // tuples streamed from inputs
  int64_t probes = 0;               // index probes issued
  int64_t intermediate_tuples = 0;  // partial join results produced
  int64_t output_tuples = 0;        // tuples emitted (pre-aggregation)

  PlanStats& operator+=(const PlanStats& other);
};

/// A cache of materialized scans and join hash tables shared by several
/// plan executions over the *same* condition (the truth-table rows of
/// Section 5.3/5.4 all share the view condition and most inputs).  This is
/// the paper's "re-using partial subexpressions appearing in multiple rows";
/// bench E9 ablates it.  (The *cross-round* reuse of these tables lives in
/// `JoinStateCache`, which keys on stable slot identities instead.)
///
/// Entries are keyed by input identity, so a cache must never outlive the
/// inputs it indexes, and must not be shared across different conditions.
/// Debug builds assert this: each entry records its input's
/// `debug_serial()`, and `Find` trips when a freed input's address was
/// reused by a newer one.
class PlannerCache {
 public:
  /// A filtered, materialized input with an optional equi-join hash index.
  struct Table {
    std::vector<std::pair<Tuple, int64_t>> rows;
    // Key tuple (values of key_attrs in order) → indices into rows.
    std::unordered_map<Tuple, std::vector<size_t>> index;
    // Raw-key mirror of `index`, populated only when `int_keyed`: the batch
    // pipeline probes it with an int64 straight out of a column, skipping
    // the key-tuple build and the Tuple hash.  Every mutation of `index`
    // (FillTable, JoinStateCache::AddRow/RemoveRow) maintains the mirror.
    std::unordered_map<int64_t, std::vector<size_t>> int_index;
    // Flat row-major mirror of `rows`' values, populated only when
    // `all_int`: the batch pipeline copies matched rows into merged
    // batches straight from this array (row i at [i*arity, (i+1)*arity)),
    // skipping the per-value variant reads of `SetFromTuple`.  Maintained
    // at the same three sites as `int_index`.
    std::vector<int64_t> int_rows;
    std::vector<size_t> key_attrs;  // empty for plain materializations
    bool int_keyed = false;  // key_attrs is one kInt64 attribute
    bool all_int = false;    // every input attribute is kInt64
    uint64_t debug_serial = 0;      // RelationInput::debug_serial() at Create
  };

  /// Returns the cached table for (input, key_attrs), or nullptr.
  Table* Find(const RelationInput* input, const std::vector<size_t>& key);

  /// Inserts and returns an empty table for (input, key_attrs).
  Table* Create(const RelationInput* input, const std::vector<size_t>& key);

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::pair<const RelationInput*, std::vector<size_t>>,
           std::unique_ptr<Table>>
      tables_;
};

/// Work counters of the columnar batch pipeline (see `EvalContext`).
struct BatchEvalStats {
  int64_t batches = 0;  // ColumnBatch chunks allocated
  int64_t rows = 0;     // rows committed into batches across all stages

  BatchEvalStats& operator+=(const BatchEvalStats& other) {
    batches += other.batches;
    rows += other.rows;
    return *this;
  }
};

/// Execution-context knobs the differential maintainer threads into the
/// planner.  When `enable_batch` is set (and `arena` is non-null) the
/// executor runs the columnar pipeline: delta rows move through the join
/// order in `ColumnBatch` chunks whose arrays live in `arena` (scoped to
/// the maintenance round), selections produce selection vectors, and
/// projection is column shuffling.  Without a context — or with the knob
/// off — the historical tuple-at-a-time path runs; the two produce
/// byte-identical results (property-tested).
struct EvalContext {
  util::Arena* arena = nullptr;
  bool enable_batch = false;
  BatchEvalStats* batch_stats = nullptr;  // optional activity counters
  // Cooperative cancellation token (null = uncancellable).  The executor
  // polls it per join step and per allocated batch — never per tuple — so
  // an expired statement deadline unwinds the evaluation mid-round at a
  // bounded cost (see util/deadline.h for the poll-point contract).
  const util::Cancellation* cancel = nullptr;
};

/// Evaluates an SPJ query with counting semantics (Section 5.2: join
/// multiplies multiplicities, projection sums them) and adds the result to
/// `out` with counts scaled by `multiplier`.
///
/// The plan pushes single-input atoms below the joins, extracts equality
/// atoms common to every disjunct as hash/index join predicates, orders
/// joins greedily by input size (preferring index probes), and applies the
/// remaining condition as a residual filter.  `ctx` selects the columnar
/// batch pipeline (see `EvalContext`); null runs tuple-at-a-time.
void EvaluateSpjInto(const SpjQuery& query, CountedRelation* out,
                     int64_t multiplier = 1, PlanStats* stats = nullptr,
                     PlannerCache* cache = nullptr,
                     const EvalContext* ctx = nullptr);

/// Convenience wrapper returning a fresh `CountedRelation`.
CountedRelation EvaluateSpj(const SpjQuery& query, PlanStats* stats = nullptr,
                            PlannerCache* cache = nullptr);

/// Returns the concatenated (combined) scheme of the query's inputs.
Schema CombinedSchema(const SpjQuery& query);

}  // namespace mview

#endif  // MVIEW_RA_PLANNER_H_
