#ifndef MVIEW_RA_BATCH_H_
#define MVIEW_RA_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "util/arena.h"

namespace mview {

/// A fixed-capacity columnar chunk of counted rows.
///
/// This is the unit of the batch differential pipeline: instead of flowing
/// through the evaluator one heap-allocated `Tuple` (a `vector<Value>` of
/// variants) at a time, delta rows move in chunks of `kDefaultCapacity`
/// rows laid out column-wise in per-round arena memory —
///
///   - `kInt64` attributes are a flat `int64_t` array (the common case;
///     the paper's domains are integer-valued), so selection and join-key
///     computation run as tight loops over machine words;
///   - `kString` attributes are an array of *borrowed* `const std::string*`
///     pointing into the scanned relations' node-stable rows, so strings
///     are never copied while a row is in flight — only a surviving output
///     row materializes its strings into the result `Tuple`;
///   - every row carries its multiplicity in a `counts` column
///     (Section 5.2's counter algebra: join multiplies, projection sums).
///
/// All arrays live in a `util::Arena` scoped to the maintenance round, so a
/// batch must not outlive its round — under ASan the arena's `Reset`
/// poisons the arrays and a late read aborts.  Batches are move-only
/// handles; they never own or free memory.
///
/// Rows between `size()` and `capacity()` are uninitialized.  Columns of a
/// wide (combined-scheme) batch that belong to not-yet-joined inputs are
/// likewise uninitialized until the join step that binds them fills them
/// in; `CopyRow` therefore copies explicit column ranges, not whole rows.
class ColumnBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  ColumnBatch() = default;

  /// A batch shaped like `schema` with room for `capacity` rows, all
  /// arrays carved from `arena`.
  ColumnBatch(const Schema& schema, size_t capacity, util::Arena* arena);

  ColumnBatch(ColumnBatch&&) = default;
  ColumnBatch& operator=(ColumnBatch&&) = default;
  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }
  size_t num_columns() const { return num_cols_; }

  ValueType column_type(size_t col) const { return types_[col]; }

  /// Typed column accessors; the column must have the matching type.
  int64_t* ints(size_t col) { return static_cast<int64_t*>(data_[col]); }
  const int64_t* ints(size_t col) const {
    return static_cast<const int64_t*>(data_[col]);
  }
  const std::string** strs(size_t col) {
    return static_cast<const std::string**>(data_[col]);
  }
  const std::string* const* strs(size_t col) const {
    return static_cast<const std::string* const*>(data_[col]);
  }

  /// The multiplicity column.
  int64_t* counts() { return counts_; }
  const int64_t* counts() const { return counts_; }

  /// Opens a new row with multiplicity `count`, returning its index; the
  /// value columns are uninitialized until the caller fills them.  The
  /// batch must not be full.
  size_t AppendRow(int64_t count) {
    counts_[size_] = count;
    return size_++;
  }

  /// Rolls back to `n` rows (abandoning tentative rows a filter rejected)
  /// or truncates after compaction.  `n` must be ≤ `size()`.
  void Truncate(size_t n) { size_ = n; }

  void Clear() { size_ = 0; }

  /// Writes `tuple`'s values into row `row` at columns
  /// `[first_col, first_col + tuple.size())`.
  void SetFromTuple(size_t row, const Tuple& tuple, size_t first_col);

  /// Appends a whole row from `tuple` (columns starting at `first_col`;
  /// any others stay uninitialized).
  void AppendTuple(const Tuple& tuple, int64_t count, size_t first_col = 0) {
    SetFromTuple(AppendRow(count), tuple, first_col);
  }

  /// Copies columns `[first_col, first_col + n_cols)` of `src`'s row
  /// `src_row` into this batch's row `dst_row`.  The column types must
  /// match positionally.
  void CopyRow(const ColumnBatch& src, size_t src_row, size_t dst_row,
               size_t first_col, size_t n_cols);

  /// Materializes the value at (row, col) — copies the string for string
  /// columns, so the result owns its payload.
  Value ValueAt(size_t row, size_t col) const;

  /// Materializes row `row` restricted to `cols` (a projection) as an
  /// owning `Tuple`.
  Tuple MakeTuple(size_t row, const std::vector<size_t>& cols) const;

  /// Materializes the full row.
  Tuple MakeTuple(size_t row) const;

  /// Keeps exactly the rows listed (ascending) in `sel[0..n)`, moving them
  /// to the front — the compaction step after a selection kernel produced
  /// the selection vector.
  void Keep(const uint32_t* sel, size_t n);

  /// A shallow projection: a batch whose `cols.size()` columns alias this
  /// batch's `cols[i]` columns and counts ("projection is column
  /// shuffling" — no row data moves).  The view shares this batch's arena
  /// arrays and current size; it is invalidated by any mutation of the
  /// source.
  ColumnBatch ProjectView(const std::vector<size_t>& cols,
                          util::Arena* arena) const;

 private:
  ValueType* types_ = nullptr;  // [num_cols_]
  void** data_ = nullptr;       // [num_cols_], each [capacity_]
  int64_t* counts_ = nullptr;   // [capacity_]
  size_t num_cols_ = 0;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// The consumer side of the evaluator's streams.
///
/// The virtual interface `RelationInput` scans and the planner emits into:
/// a batch `EmitBatch` fast path for columnar producers, and a
/// tuple-at-a-time `Emit` that every consumer must implement — a sink that
/// only implements `Emit` still receives batched streams through the
/// default row-loop adapter.  Producers and consumers both allocate their
/// sinks on the stack; no `std::function` hop remains on the row path.
class DeltaSink {
 public:
  virtual ~DeltaSink() = default;

  /// Receives one tuple with its multiplicity.
  virtual void Emit(const Tuple& tuple, int64_t count) = 0;

  /// Receives a whole batch.  The default adapter materializes each row
  /// and forwards it to `Emit`; columnar consumers override this to
  /// consume the columns directly.
  virtual void EmitBatch(const ColumnBatch& batch);
};

/// Accumulates a counted stream into a `CountedRelation` with counts
/// scaled by `multiplier` — the terminal sink of differential evaluation.
class CountedRelationSink final : public DeltaSink {
 public:
  CountedRelationSink(CountedRelation* out, int64_t multiplier)
      : out_(out), multiplier_(multiplier) {}

  void Emit(const Tuple& tuple, int64_t count) override {
    out_->Add(tuple, count * multiplier_);
  }
  void EmitBatch(const ColumnBatch& batch) override;

 private:
  CountedRelation* out_;
  int64_t multiplier_;
};

}  // namespace mview

#endif  // MVIEW_RA_BATCH_H_
