#ifndef MVIEW_RA_EVAL_H_
#define MVIEW_RA_EVAL_H_

#include <cstdint>
#include <vector>

#include "db/database.h"
#include "predicate/condition.h"
#include "ra/batch.h"
#include "ra/expr.h"
#include "relational/relation.h"

namespace mview {

/// Infers the output scheme of `expr` over `db`'s catalog, validating
/// conditions, projections, and join compatibility.  Throws on errors.
Schema InferSchema(const Expr& expr, const Database& db);

/// Evaluates `expr` against `db` with counting semantics (Section 5.2):
/// base tuples have multiplicity one, join multiplies multiplicities,
/// projection sums them, union adds, difference subtracts.
///
/// This straightforward recursive evaluator is the semantic oracle for the
/// planner and the differential machinery; correctness tests compare both
/// against it.
CountedRelation Evaluate(const Expr& expr, const Database& db);

/// An `Atom` with its variables resolved to column positions of the batch
/// it will be evaluated over — the per-row name lookups of
/// `Atom::Evaluate` hoisted out of the hot loop.  `offset` keeps the exact
/// semantics of `x op y + c` (compare `x − c` against `y`, avoiding
/// overflow of `y + c`), so batch and tuple evaluation agree bit-for-bit.
struct BoundAtom {
  size_t lhs_col = 0;
  CompareOp op = CompareOp::kEq;
  bool var_var = false;
  size_t rhs_col = 0;   // when var_var
  int64_t offset = 0;   // the `c` of `x op y + c`; only with var_var
  Value rhs_const;      // when !var_var
};

/// Resolves `atom` against `schema`, shifting every resolved column by
/// `col_offset` (an input's position inside a combined-scheme batch).
BoundAtom BindAtom(const Atom& atom, const Schema& schema,
                   size_t col_offset = 0);

/// Evaluates one bound atom against row `row` of `batch`; identical
/// semantics to `Atom::Evaluate` on the materialized row.
bool EvalBoundAtom(const ColumnBatch& batch, size_t row, const BoundAtom& atom);

/// The selection kernel: refines the selection vector `sel` (holding `n`
/// row ids of `batch`) to the rows passing *every* atom of the
/// conjunction, preserving order.  Returns the surviving count.
size_t SelectConjunction(const ColumnBatch& batch,
                         const std::vector<BoundAtom>& atoms, uint32_t* sel,
                         size_t n);

/// A full DNF condition bound to batch columns; rows pass when any
/// disjunct's atoms all hold (an empty DNF is `false`, a DNF containing an
/// empty conjunction accepts everything — matching `Condition`).
using BoundDnf = std::vector<std::vector<BoundAtom>>;

/// Binds every atom of `condition` against `schema`.
BoundDnf BindCondition(const Condition& condition, const Schema& schema);

/// Refines `sel` to the rows of `batch` satisfying the bound condition.
size_t SelectDnf(const ColumnBatch& batch, const BoundDnf& dnf, uint32_t* sel,
                 size_t n);

}  // namespace mview

#endif  // MVIEW_RA_EVAL_H_
