#ifndef MVIEW_RA_EVAL_H_
#define MVIEW_RA_EVAL_H_

#include "db/database.h"
#include "ra/expr.h"
#include "relational/relation.h"

namespace mview {

/// Infers the output scheme of `expr` over `db`'s catalog, validating
/// conditions, projections, and join compatibility.  Throws on errors.
Schema InferSchema(const Expr& expr, const Database& db);

/// Evaluates `expr` against `db` with counting semantics (Section 5.2):
/// base tuples have multiplicity one, join multiplies multiplicities,
/// projection sums them, union adds, difference subtracts.
///
/// This straightforward recursive evaluator is the semantic oracle for the
/// planner and the differential machinery; correctness tests compare both
/// against it.
CountedRelation Evaluate(const Expr& expr, const Database& db);

}  // namespace mview

#endif  // MVIEW_RA_EVAL_H_
