#include "ra/batch.h"

#include <cstring>

#include "util/error.h"

namespace mview {

ColumnBatch::ColumnBatch(const Schema& schema, size_t capacity,
                         util::Arena* arena)
    : num_cols_(schema.size()), capacity_(capacity) {
  MVIEW_CHECK(arena != nullptr, "null arena");
  MVIEW_CHECK(capacity > 0, "zero-capacity batch");
  types_ = arena->AllocateArray<ValueType>(num_cols_);
  data_ = arena->AllocateArray<void*>(num_cols_);
  counts_ = arena->AllocateArray<int64_t>(capacity_);
  for (size_t c = 0; c < num_cols_; ++c) {
    types_[c] = schema.attribute(c).type;
    if (types_[c] == ValueType::kInt64) {
      data_[c] = arena->AllocateArray<int64_t>(capacity_);
    } else {
      data_[c] = arena->AllocateArray<const std::string*>(capacity_);
    }
  }
}

void ColumnBatch::SetFromTuple(size_t row, const Tuple& tuple,
                               size_t first_col) {
  for (size_t i = 0; i < tuple.size(); ++i) {
    const size_t c = first_col + i;
    if (types_[c] == ValueType::kInt64) {
      ints(c)[row] = tuple.at(i).AsInt64();
    } else {
      strs(c)[row] = &tuple.at(i).AsString();
    }
  }
}

void ColumnBatch::CopyRow(const ColumnBatch& src, size_t src_row,
                          size_t dst_row, size_t first_col, size_t n_cols) {
  for (size_t c = first_col; c < first_col + n_cols; ++c) {
    if (types_[c] == ValueType::kInt64) {
      ints(c)[dst_row] = src.ints(c)[src_row];
    } else {
      strs(c)[dst_row] = src.strs(c)[src_row];
    }
  }
}

Value ColumnBatch::ValueAt(size_t row, size_t col) const {
  if (types_[col] == ValueType::kInt64) return Value(ints(col)[row]);
  return Value(*strs(col)[row]);
}

Tuple ColumnBatch::MakeTuple(size_t row,
                             const std::vector<size_t>& cols) const {
  std::vector<Value> vals;
  vals.reserve(cols.size());
  for (size_t c : cols) vals.push_back(ValueAt(row, c));
  return Tuple(std::move(vals));
}

Tuple ColumnBatch::MakeTuple(size_t row) const {
  std::vector<Value> vals;
  vals.reserve(num_cols_);
  for (size_t c = 0; c < num_cols_; ++c) vals.push_back(ValueAt(row, c));
  return Tuple(std::move(vals));
}

void ColumnBatch::Keep(const uint32_t* sel, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const size_t row = sel[i];
    if (row == i) continue;  // prefix already in place
    for (size_t c = 0; c < num_cols_; ++c) {
      if (types_[c] == ValueType::kInt64) {
        ints(c)[i] = ints(c)[row];
      } else {
        strs(c)[i] = strs(c)[row];
      }
    }
    counts_[i] = counts_[row];
  }
  size_ = n;
}

ColumnBatch ColumnBatch::ProjectView(const std::vector<size_t>& cols,
                                     util::Arena* arena) const {
  ColumnBatch view;
  view.num_cols_ = cols.size();
  view.types_ = arena->AllocateArray<ValueType>(view.num_cols_);
  view.data_ = arena->AllocateArray<void*>(view.num_cols_);
  for (size_t i = 0; i < cols.size(); ++i) {
    view.types_[i] = types_[cols[i]];
    view.data_[i] = data_[cols[i]];
  }
  view.counts_ = counts_;
  view.size_ = size_;
  view.capacity_ = capacity_;
  return view;
}

void DeltaSink::EmitBatch(const ColumnBatch& batch) {
  for (size_t row = 0; row < batch.size(); ++row) {
    Emit(batch.MakeTuple(row), batch.counts()[row]);
  }
}

void CountedRelationSink::EmitBatch(const ColumnBatch& batch) {
  // Pre-size for the batch, then move each freshly built tuple into the
  // map — the batch arm pays one allocation per emitted row where the
  // tuple-at-a-time adapter pays a build plus a key copy.
  out_->Reserve(out_->size() + batch.size());
  const int64_t* counts = batch.counts();
  for (size_t row = 0; row < batch.size(); ++row) {
    out_->Add(batch.MakeTuple(row), counts[row] * multiplier_);
  }
}

}  // namespace mview
