#include "ra/eval.h"

#include <unordered_map>

#include "util/error.h"

namespace mview {
namespace {

// Returns the indices (into left/right schemes) of shared attribute names
// and the right-side indices that are not shared.
void SplitJoinAttributes(const Schema& left, const Schema& right,
                         std::vector<size_t>* left_shared,
                         std::vector<size_t>* right_shared,
                         std::vector<size_t>* right_rest) {
  for (size_t i = 0; i < right.size(); ++i) {
    const auto& attr = right.attribute(i);
    if (auto li = left.IndexOf(attr.name)) {
      MVIEW_CHECK(left.attribute(*li).type == attr.type,
                  "natural-join attribute type mismatch: ", attr.name);
      left_shared->push_back(*li);
      right_shared->push_back(i);
    } else {
      right_rest->push_back(i);
    }
  }
}

Schema JoinSchema(const Schema& left, const Schema& right) {
  std::vector<size_t> ls, rs, rr;
  SplitJoinAttributes(left, right, &ls, &rs, &rr);
  std::vector<Attribute> attrs = left.attributes();
  for (size_t i : rr) attrs.push_back(right.attribute(i));
  return Schema(std::move(attrs));
}

}  // namespace

Schema InferSchema(const Expr& expr, const Database& db) {
  switch (expr.kind()) {
    case Expr::Kind::kBase:
      return db.Get(expr.base_name()).schema();
    case Expr::Kind::kSelect: {
      Schema in = InferSchema(*expr.left(), db);
      expr.condition().Validate(in);
      return in;
    }
    case Expr::Kind::kProject:
      return InferSchema(*expr.left(), db).Project(expr.attributes());
    case Expr::Kind::kProduct:
      return InferSchema(*expr.left(), db)
          .Concat(InferSchema(*expr.right(), db));
    case Expr::Kind::kNaturalJoin:
      return JoinSchema(InferSchema(*expr.left(), db),
                        InferSchema(*expr.right(), db));
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      Schema l = InferSchema(*expr.left(), db);
      Schema r = InferSchema(*expr.right(), db);
      MVIEW_CHECK(l == r, "union/difference operands differ: ", l.ToString(),
                  " vs ", r.ToString());
      return l;
    }
    case Expr::Kind::kRename: {
      Schema in = InferSchema(*expr.left(), db);
      std::vector<Attribute> attrs = in.attributes();
      for (auto& a : attrs) {
        auto it = expr.renames().find(a.name);
        if (it != expr.renames().end()) a.name = it->second;
      }
      for (const auto& [from, to] : expr.renames()) {
        MVIEW_CHECK(in.Contains(from), "rename of unknown attribute: ", from);
      }
      return Schema(std::move(attrs));
    }
  }
  internal::ThrowError("corrupt expression tree");
}

CountedRelation Evaluate(const Expr& expr, const Database& db) {
  Schema out_schema = InferSchema(expr, db);
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      CountedRelation out(out_schema);
      db.Get(expr.base_name()).Scan([&](const Tuple& t) { out.Add(t, 1); });
      return out;
    }
    case Expr::Kind::kSelect: {
      CountedRelation in = Evaluate(*expr.left(), db);
      CountedRelation out(out_schema);
      in.Scan([&](const Tuple& t, int64_t c) {
        if (expr.condition().Evaluate(in.schema(), t)) out.Add(t, c);
      });
      return out;
    }
    case Expr::Kind::kProject: {
      CountedRelation in = Evaluate(*expr.left(), db);
      std::vector<size_t> indices;
      in.schema().Project(expr.attributes(), &indices);
      CountedRelation out(out_schema);
      // Section 5.2: the projected tuple's multiplicity is the sum of the
      // multiplicities of the operand tuples that map to it.
      in.Scan([&](const Tuple& t, int64_t c) { out.Add(t.Project(indices), c); });
      return out;
    }
    case Expr::Kind::kProduct: {
      CountedRelation l = Evaluate(*expr.left(), db);
      CountedRelation r = Evaluate(*expr.right(), db);
      CountedRelation out(out_schema);
      l.Scan([&](const Tuple& lt, int64_t lc) {
        r.Scan([&](const Tuple& rt, int64_t rc) {
          out.Add(lt.Concat(rt), lc * rc);
        });
      });
      return out;
    }
    case Expr::Kind::kNaturalJoin: {
      CountedRelation l = Evaluate(*expr.left(), db);
      CountedRelation r = Evaluate(*expr.right(), db);
      std::vector<size_t> ls, rs, rr;
      SplitJoinAttributes(l.schema(), r.schema(), &ls, &rs, &rr);
      // Hash the right side on the shared attributes.
      std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>> table;
      table.reserve(r.size());
      r.Scan([&](const Tuple& rt, int64_t rc) {
        table[rt.Project(rs)].emplace_back(rt.Project(rr), rc);
      });
      CountedRelation out(out_schema);
      // One scratch key reused across probes: overwriting its values
      // recycles string capacity instead of allocating a fresh key tuple
      // per left row.
      Tuple probe(std::vector<Value>(ls.size()));
      l.Scan([&](const Tuple& lt, int64_t lc) {
        auto& key_vals = probe.mutable_values();
        for (size_t i = 0; i < ls.size(); ++i) key_vals[i] = lt.at(ls[i]);
        auto hit = table.find(probe);
        if (hit == table.end()) return;
        for (const auto& [rest, rc] : hit->second) {
          // Section 5.2: t(N) = u(N) * v(N).
          out.Add(lt.Concat(rest), lc * rc);
        }
      });
      return out;
    }
    case Expr::Kind::kUnion: {
      CountedRelation out = Evaluate(*expr.left(), db);
      CountedRelation r = Evaluate(*expr.right(), db);
      r.Scan([&](const Tuple& t, int64_t c) { out.Add(t, c); });
      return out;
    }
    case Expr::Kind::kDifference: {
      CountedRelation out = Evaluate(*expr.left(), db);
      CountedRelation r = Evaluate(*expr.right(), db);
      // With counting semantics projection distributes over difference
      // (Section 5.2); subtraction below zero indicates a misuse and throws.
      r.Scan([&](const Tuple& t, int64_t c) { out.Add(t, -c); });
      return out;
    }
    case Expr::Kind::kRename: {
      CountedRelation in = Evaluate(*expr.left(), db);
      CountedRelation out(out_schema);
      in.Scan([&](const Tuple& t, int64_t c) { out.Add(t, c); });
      return out;
    }
  }
  internal::ThrowError("corrupt expression tree");
}

BoundAtom BindAtom(const Atom& atom, const Schema& schema, size_t col_offset) {
  BoundAtom bound;
  bound.lhs_col = col_offset + schema.MustIndexOf(atom.lhs);
  bound.op = atom.op;
  if (atom.rhs_var.has_value()) {
    bound.var_var = true;
    bound.rhs_col = col_offset + schema.MustIndexOf(*atom.rhs_var);
    bound.offset = atom.offset;
  } else {
    bound.rhs_const = atom.rhs_const;
  }
  return bound;
}

bool EvalBoundAtom(const ColumnBatch& batch, size_t row,
                   const BoundAtom& atom) {
  const bool lhs_int = batch.column_type(atom.lhs_col) == ValueType::kInt64;
  if (!atom.var_var) {
    if (lhs_int) {
      const int64_t left = batch.ints(atom.lhs_col)[row];
      const int64_t right = atom.rhs_const.AsInt64();
      return EvalCompare(left < right ? -1 : (left > right ? 1 : 0), atom.op);
    }
    const std::string& left = *batch.strs(atom.lhs_col)[row];
    return EvalCompare(left.compare(atom.rhs_const.AsString()), atom.op);
  }
  if (lhs_int) {
    // Matches Atom::Evaluate exactly: x op y + c compares x − c against y.
    const int64_t left = batch.ints(atom.lhs_col)[row] - atom.offset;
    const int64_t right = batch.ints(atom.rhs_col)[row];
    return EvalCompare(left < right ? -1 : (left > right ? 1 : 0), atom.op);
  }
  const std::string& left = *batch.strs(atom.lhs_col)[row];
  const std::string& right = *batch.strs(atom.rhs_col)[row];
  return EvalCompare(left.compare(right), atom.op);
}

size_t SelectConjunction(const ColumnBatch& batch,
                         const std::vector<BoundAtom>& atoms, uint32_t* sel,
                         size_t n) {
  for (const BoundAtom& atom : atoms) {
    size_t kept = 0;
    // One tight pass per atom over the surviving rows; the common
    // int-column cases compile to branchy-but-simple word compares.
    for (size_t i = 0; i < n; ++i) {
      if (EvalBoundAtom(batch, sel[i], atom)) sel[kept++] = sel[i];
    }
    n = kept;
    if (n == 0) break;
  }
  return n;
}

BoundDnf BindCondition(const Condition& condition, const Schema& schema) {
  BoundDnf dnf;
  dnf.reserve(condition.disjuncts().size());
  for (const Conjunction& conj : condition.disjuncts()) {
    std::vector<BoundAtom> atoms;
    atoms.reserve(conj.atoms.size());
    for (const Atom& atom : conj.atoms) {
      atoms.push_back(BindAtom(atom, schema));
    }
    dnf.push_back(std::move(atoms));
  }
  return dnf;
}

size_t SelectDnf(const ColumnBatch& batch, const BoundDnf& dnf, uint32_t* sel,
                 size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t row = sel[i];
    for (const auto& conj : dnf) {
      bool pass = true;
      for (const BoundAtom& atom : conj) {
        if (!EvalBoundAtom(batch, row, atom)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        sel[kept++] = static_cast<uint32_t>(row);
        break;
      }
    }
  }
  return kept;
}

}  // namespace mview
