#include "ra/join_cache.h"

#include <algorithm>

#include "relational/partition.h"
#include "util/error.h"
#include "util/fault.h"

namespace mview {

bool JoinStateCache::InPartition(uint32_t slot, const Tuple& tuple) const {
  if (spec_.total <= 1) return true;
  if (slot >= spec_.slot_key_attr.size()) return true;
  return PartitionOf(tuple, spec_.slot_key_attr[slot], spec_.total) ==
         spec_.slice;
}

size_t JoinStateCache::ApproxRowBytes(const Tuple& tuple) {
  // One copy in Table::rows plus (roughly) one key copy in the hash index
  // or the keyless reverse map, plus container node overhead.  The budget
  // is a coarse knob, not an allocator audit.
  size_t value_bytes = 0;
  for (const Value& v : tuple.values()) {
    value_bytes += sizeof(Value);
    if (v.type() == ValueType::kString) value_bytes += v.AsString().size();
  }
  return 2 * (sizeof(Tuple) + value_bytes) + 64;
}

void JoinStateCache::BeginRound(std::vector<SlotUpdate> slots) {
  if (round_active_) AbortRound();
  slots_ = std::move(slots);
  round_active_ = true;
  // Fires with the round open: a failure here models a crash mid-repair
  // (entries partially synchronized) and exercises the maintainer's
  // round guard, which must abort the round so the next one rebuilds cold.
  MVIEW_FAULT_POINT("joincache.repair");

  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = *it->second;
    const uint32_t slot = it->first.first;
    const SlotUpdate* current =
        slot < slots_.size() ? &slots_[slot] : nullptr;
    const bool stale = entry.inround || !entry.complete ||
                       current == nullptr || entry.uid != current->uid ||
                       entry.version != current->version;
    if (stale) {
      bytes_ -= entry.bytes;
      it = entries_.erase(it);
      continue;
    }
    // Apply the round's deletes so the entry mirrors the clean pre-state
    // `r − d` the planner's clean inputs stream.
    if (current->deletes != nullptr && !current->deletes->empty()) {
      entry.inround = true;
      // The partition filter here is an optimization only: RemoveRow
      // tolerates absent rows, and an out-of-partition tuple was never
      // added.  The EndRound insert filter is load-bearing.
      current->deletes->Scan([&](const Tuple& t) {
        if (InPartition(slot, t)) RemoveRow(&entry, t);
      });
    } else if (current->inserts != nullptr && !current->inserts->empty()) {
      entry.inround = true;  // inserts pending at EndRound
    }
    ++it;
  }
}

void JoinStateCache::EndRound() {
  if (!round_active_) return;
  for (auto& [key, entry_ptr] : entries_) {
    Entry& entry = *entry_ptr;
    if (!entry.inround) continue;
    const SlotUpdate& slot = slots_[key.first];
    if (slot.inserts != nullptr) {
      // A partitioned shard must not absorb another shard's rows: AddRow
      // only sees the entry's local filters, so the partition membership
      // check here is required for correctness.
      slot.inserts->Scan([&](const Tuple& t) {
        if (InPartition(key.first, t)) AddRow(&entry, t);
      });
    }
    // Normalized effects satisfy deletes ⊆ r and inserts ∩ r = ∅, so every
    // applied tuple bumps the relation's version exactly once.
    entry.version = slot.version +
                    (slot.deletes != nullptr ? slot.deletes->size() : 0) +
                    (slot.inserts != nullptr ? slot.inserts->size() : 0);
    entry.inround = false;
  }
  round_active_ = false;
  slots_.clear();
  EvictToBudget(nullptr);
}

void JoinStateCache::AbortRound() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = *it->second;
    if (entry.inround || !entry.complete) {
      bytes_ -= entry.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  round_active_ = false;
  slots_.clear();
}

bool JoinStateCache::Peek(uint32_t slot,
                          const std::vector<size_t>& key_attrs) const {
  if (!round_active_) return false;
  auto it = entries_.find(Key{slot, key_attrs});
  return it != entries_.end() && it->second->complete;
}

PlannerCache::Table* JoinStateCache::Lookup(
    uint32_t slot, const std::vector<size_t>& key_attrs) {
  if (!round_active_) return nullptr;
  auto it = entries_.find(Key{slot, key_attrs});
  if (it == entries_.end() || !it->second->complete) return nullptr;
  ++counters_.hits;
  it->second->last_used = ++tick_;
  return &it->second->table;
}

PlannerCache::Table* JoinStateCache::Install(
    uint32_t slot, const std::vector<size_t>& key_attrs, const Schema& schema,
    const std::vector<Atom>& filters) {
  if (!round_active_ || slot >= slots_.size()) return nullptr;
  ++counters_.misses;
  auto& entry_ptr = entries_[Key{slot, key_attrs}];
  if (entry_ptr != nullptr) bytes_ -= entry_ptr->bytes;
  entry_ptr = std::make_unique<Entry>();
  Entry& entry = *entry_ptr;
  entry.table.key_attrs = key_attrs;
  entry.schema = schema;
  entry.filters = filters;
  const SlotUpdate& current = slots_[slot];
  entry.uid = current.uid;
  entry.version = current.version;
  // A table built during the round holds the clean state `r − d`; it still
  // needs the round's inserts (and the post-version stamp) at EndRound
  // whenever the slot was touched.
  entry.inround =
      (current.deletes != nullptr && !current.deletes->empty()) ||
      (current.inserts != nullptr && !current.inserts->empty());
  entry.last_used = ++tick_;
  return &entry.table;
}

void JoinStateCache::CompleteInstall(uint32_t slot,
                                     const std::vector<size_t>& key_attrs) {
  auto it = entries_.find(Key{slot, key_attrs});
  MVIEW_CHECK(it != entries_.end(), "CompleteInstall without Install");
  Entry& entry = *it->second;
  entry.bytes = 256;  // fixed per-entry overhead
  for (size_t i = 0; i < entry.table.rows.size(); ++i) {
    entry.bytes += ApproxRowBytes(entry.table.rows[i].first);
    if (key_attrs.empty()) entry.row_of[entry.table.rows[i].first] = i;
  }
  entry.complete = true;
  bytes_ += entry.bytes;
  EvictToBudget(&entry);
}

void JoinStateCache::AddRow(Entry* entry, const Tuple& tuple) {
  for (const Atom& atom : entry->filters) {
    if (!atom.Evaluate(entry->schema, tuple)) return;
  }
  const size_t row = entry->table.rows.size();
  entry->table.rows.emplace_back(tuple, 1);
  if (entry->table.all_int) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      entry->table.int_rows.push_back(tuple.at(i).AsInt64());
    }
  }
  if (!entry->table.key_attrs.empty()) {
    entry->table.index[tuple.Project(entry->table.key_attrs)].push_back(row);
    if (entry->table.int_keyed) {
      entry->table.int_index[tuple.at(entry->table.key_attrs[0]).AsInt64()]
          .push_back(row);
    }
  } else {
    entry->row_of[tuple] = row;
  }
  const size_t row_bytes = ApproxRowBytes(tuple);
  entry->bytes += row_bytes;
  bytes_ += row_bytes;
  ++counters_.delta_rows;
}

void JoinStateCache::RemoveRow(Entry* entry, const Tuple& tuple) {
  auto& rows = entry->table.rows;
  size_t row = rows.size();
  if (!entry->table.key_attrs.empty()) {
    auto hit = entry->table.index.find(tuple.Project(entry->table.key_attrs));
    if (hit == entry->table.index.end()) return;  // filtered out at build
    auto& bucket = hit->second;
    size_t pos = bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (rows[bucket[i]].first == tuple) {
        pos = i;
        break;
      }
    }
    if (pos == bucket.size()) return;  // filtered out at build
    row = bucket[pos];
    bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(pos));
    if (bucket.empty()) entry->table.index.erase(hit);
    if (entry->table.int_keyed) {
      auto ihit = entry->table.int_index.find(
          tuple.at(entry->table.key_attrs[0]).AsInt64());
      MVIEW_CHECK(ihit != entry->table.int_index.end(),
                  "int_index out of sync with index");
      auto& ibucket = ihit->second;
      ibucket.erase(std::find(ibucket.begin(), ibucket.end(), row));
      if (ibucket.empty()) entry->table.int_index.erase(ihit);
    }
  } else {
    auto hit = entry->row_of.find(tuple);
    if (hit == entry->row_of.end()) return;  // filtered out at build
    row = hit->second;
    entry->row_of.erase(hit);
  }

  // Swap-remove; redirect references to the moved last row.
  const size_t last = rows.size() - 1;
  if (row != last) {
    if (!entry->table.key_attrs.empty()) {
      Tuple moved_key = rows[last].first.Project(entry->table.key_attrs);
      auto& bucket = entry->table.index[moved_key];
      std::replace(bucket.begin(), bucket.end(), last, row);
      if (entry->table.int_keyed) {
        auto& ibucket = entry->table.int_index[rows[last].first
                            .at(entry->table.key_attrs[0])
                            .AsInt64()];
        std::replace(ibucket.begin(), ibucket.end(), last, row);
      }
    } else {
      entry->row_of[rows[last].first] = row;
    }
    rows[row] = std::move(rows[last]);
  }
  rows.pop_back();
  if (entry->table.all_int) {
    auto& ir = entry->table.int_rows;
    const size_t stride = entry->schema.size();
    if (row != last) {
      std::copy(ir.begin() + static_cast<ptrdiff_t>(last * stride),
                ir.begin() + static_cast<ptrdiff_t>((last + 1) * stride),
                ir.begin() + static_cast<ptrdiff_t>(row * stride));
    }
    ir.resize(last * stride);
  }
  const size_t row_bytes = ApproxRowBytes(tuple);
  entry->bytes -= std::min(entry->bytes, row_bytes);
  bytes_ -= std::min(bytes_, row_bytes);
  ++counters_.delta_rows;
}

void JoinStateCache::EvictToBudget(const Entry* keep) {
  while (bytes_ > budget_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& entry = *it->second;
      // In-round entries may still be served to the current round (and the
      // just-installed table's pointer is live in the planner), so only
      // settled entries are evictable.
      if (entry.inround || !entry.complete || it->second.get() == keep) {
        continue;
      }
      if (victim == entries_.end() ||
          entry.last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    bytes_ -= victim->second->bytes;
    ++counters_.evictions;
    entries_.erase(victim);
  }
}

}  // namespace mview
