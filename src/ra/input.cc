#include "ra/input.h"

#include <atomic>

#include "relational/partition.h"
#include "util/error.h"

namespace mview {

RelationInput::RelationInput() {
  static std::atomic<uint64_t> serial{0};
  debug_serial_ = serial.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool RelationInput::CanProbe(size_t) const { return false; }

void RelationInput::ProbeEqual(size_t, const Value&, DeltaSink&) const {
  internal::ThrowError("this input does not support index probes");
}

FullRelationInput::FullRelationInput(const Relation* relation, Schema schema)
    : relation_(relation), schema_(std::move(schema)) {
  MVIEW_CHECK(relation_ != nullptr, "null relation");
  MVIEW_CHECK(schema_.size() == relation_->schema().size(),
              "alias scheme arity mismatch");
}

void FullRelationInput::Scan(DeltaSink& sink) const {
  relation_->Scan([&](const Tuple& t) { sink.Emit(t, 1); });
}

bool FullRelationInput::CanProbe(size_t attr) const {
  return relation_->HasIndex(attr);
}

void FullRelationInput::ProbeEqual(size_t attr, const Value& key,
                                   DeltaSink& sink) const {
  const auto* hits = relation_->Probe(attr, key);
  if (hits == nullptr) return;
  for (const Tuple* t : *hits) sink.Emit(*t, 1);
}

SubtractRelationInput::SubtractRelationInput(const Relation* relation,
                                             const Relation* minus,
                                             Schema schema)
    : relation_(relation), minus_(minus), schema_(std::move(schema)) {
  MVIEW_CHECK(relation_ != nullptr && minus_ != nullptr, "null relation");
  MVIEW_CHECK(schema_.size() == relation_->schema().size(),
              "alias scheme arity mismatch");
}

size_t SubtractRelationInput::SizeHint() const {
  size_t r = relation_->size();
  size_t m = minus_->size();
  return r > m ? r - m : 0;
}

void SubtractRelationInput::Scan(DeltaSink& sink) const {
  relation_->Scan([&](const Tuple& t) {
    if (!minus_->Contains(t)) sink.Emit(t, 1);
  });
}

bool SubtractRelationInput::CanProbe(size_t attr) const {
  return relation_->HasIndex(attr);
}

void SubtractRelationInput::ProbeEqual(size_t attr, const Value& key,
                                       DeltaSink& sink) const {
  const auto* hits = relation_->Probe(attr, key);
  if (hits == nullptr) return;
  for (const Tuple* t : *hits) {
    if (!minus_->Contains(*t)) sink.Emit(*t, 1);
  }
}

CountedRelationInput::CountedRelationInput(const CountedRelation* relation,
                                           Schema schema)
    : relation_(relation), schema_(std::move(schema)) {
  MVIEW_CHECK(relation_ != nullptr, "null relation");
  MVIEW_CHECK(schema_.size() == relation_->schema().size(),
              "alias scheme arity mismatch");
}

void CountedRelationInput::Scan(DeltaSink& sink) const {
  relation_->Scan([&](const Tuple& t, int64_t c) { sink.Emit(t, c); });
}

DeltaIndexInput::DeltaIndexInput(const Relation* relation, Schema schema)
    : relation_(relation), schema_(std::move(schema)) {
  MVIEW_CHECK(relation_ != nullptr, "null relation");
  MVIEW_CHECK(schema_.size() == relation_->schema().size(),
              "alias scheme arity mismatch");
}

void DeltaIndexInput::Scan(DeltaSink& sink) const {
  relation_->Scan([&](const Tuple& t) { sink.Emit(t, 1); });
}

void DeltaIndexInput::ProbeEqual(size_t attr, const Value& key,
                                 DeltaSink& sink) const {
  auto [it, created] = indexes_.try_emplace(attr);
  if (created) {
    // First probe on this attribute: build the index once, O(|delta|).
    // Tuple pointers reference the relation's stable set nodes.
    it->second.reserve(relation_->size());
    relation_->Scan(
        [&](const Tuple& t) { it->second[t.at(attr)].push_back(&t); });
  }
  auto hit = it->second.find(key);
  if (hit == it->second.end()) return;
  for (const Tuple* t : hit->second) sink.Emit(*t, 1);
}

ConcatRelationInput::ConcatRelationInput(const RelationInput* first,
                                         const RelationInput* second)
    : first_(first), second_(second) {
  MVIEW_CHECK(first_ != nullptr && second_ != nullptr, "null input");
  MVIEW_CHECK(first_->schema().size() == second_->schema().size(),
              "concatenated inputs must share a scheme");
}

size_t ConcatRelationInput::SizeHint() const {
  return first_->SizeHint() + second_->SizeHint();
}

void ConcatRelationInput::Scan(DeltaSink& sink) const {
  first_->Scan(sink);
  second_->Scan(sink);
}

bool ConcatRelationInput::CanProbe(size_t attr) const {
  return first_->CanProbe(attr) && second_->CanProbe(attr);
}

void ConcatRelationInput::ProbeEqual(size_t attr, const Value& key,
                                     DeltaSink& sink) const {
  first_->ProbeEqual(attr, key, sink);
  second_->ProbeEqual(attr, key, sink);
}

PartitionSliceInput::PartitionSliceInput(const Relation* relation,
                                         Schema schema, const Relation* minus,
                                         size_t key_attr, uint32_t slice,
                                         uint32_t total)
    : relation_(relation),
      minus_(minus),
      schema_(std::move(schema)),
      key_attr_(key_attr),
      slice_(slice),
      total_(total) {
  MVIEW_CHECK(relation_ != nullptr, "null relation");
  MVIEW_CHECK(schema_.size() == relation_->schema().size(),
              "alias scheme arity mismatch");
  MVIEW_CHECK(total_ >= 1 && slice_ < total_, "partition slice out of range");
  MVIEW_CHECK(key_attr_ == kRowHashKey || key_attr_ < schema_.size(),
              "partition key attribute out of range");
}

bool PartitionSliceInput::InSlice(const Tuple& t) const {
  return PartitionOf(t, key_attr_, total_) == slice_;
}

size_t PartitionSliceInput::SizeHint() const {
  size_t r = relation_->size();
  size_t m = minus_ != nullptr ? minus_->size() : 0;
  // An estimate (the heuristic consumer only ranks inputs): an even share
  // of the surviving rows, rounded up so a non-empty slice never claims 0.
  return (r > m ? r - m : 0) / total_ + 1;
}

void PartitionSliceInput::Scan(DeltaSink& sink) const {
  relation_->Scan([&](const Tuple& t) {
    if (!InSlice(t)) return;
    if (minus_ != nullptr && minus_->Contains(t)) return;
    sink.Emit(t, 1);
  });
}

bool PartitionSliceInput::CanProbe(size_t attr) const {
  return relation_->HasIndex(attr);
}

void PartitionSliceInput::ProbeEqual(size_t attr, const Value& key,
                                     DeltaSink& sink) const {
  const auto* hits = relation_->Probe(attr, key);
  if (hits == nullptr) return;
  for (const Tuple* t : *hits) {
    if (!InSlice(*t)) continue;
    if (minus_ != nullptr && minus_->Contains(*t)) continue;
    sink.Emit(*t, 1);
  }
}

}  // namespace mview
