#ifndef MVIEW_PREDICATE_SUBSTITUTION_H_
#define MVIEW_PREDICATE_SUBSTITUTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "predicate/condition.h"
#include "predicate/constraint_graph.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace mview {

/// The formula classification of Definition 4.2, relative to a set of
/// substituted variables (the attributes `Y1` of the updated relation(s)).
enum class FormulaClass {
  /// No variable of the atom is substituted; the atom is unchanged.
  kInvariant,
  /// Every variable is substituted; after substitution the atom is ground
  /// (`c op d`) and simply evaluates to true or false.
  kVariantEvaluable,
  /// Some but not all variables are substituted; the atom becomes a
  /// variable-vs-constant constraint (`x op c`).
  kVariantNonEvaluable,
};

/// Classifies an atom given a predicate telling which variables are
/// substituted.
FormulaClass ClassifyAtom(
    const Atom& atom,
    const std::function<bool(const std::string&)>& is_substituted);

/// A compiled filter deciding Theorem 4.1 / 4.2 for batches of tuples.
///
/// Construction performs the per-(view, relation) work of Algorithm 4.1
/// once: the condition's disjuncts are normalized, their atoms classified
/// per Definition 4.2, the invariant portion of each constraint graph is
/// built and closed with Floyd's algorithm, variant evaluable atoms are
/// compiled to direct slot comparisons, and variant non-evaluable atoms to
/// weighted-edge templates whose weight is an affine function of one
/// substituted value.  `MightBeRelevant` then costs `O(atoms + e·n²)` per
/// tuple instead of a fresh `O(n³)` closure.
///
/// For conditions wholly inside the Rosenkrantz–Hunt class the filter is
/// exact (Theorem 4.1: necessary and sufficient).  Atoms outside the class
/// are handled soundly: those fully grounded by the substitution are
/// evaluated exactly; the rest are conservatively assumed satisfiable, so a
/// relevant update is never dropped.
///
/// Not thread-safe: each call reuses internal scratch space.
class SubstitutionFilter {
 public:
  /// Compiles `condition` (over variables typed by `variables`) for
  /// substitutions of whole tuples of the given `substituted` schemes.
  /// The substituted schemes must have pairwise-distinct attribute names
  /// and be sub-schemes of `variables` (Definition 4.3).
  SubstitutionFilter(const Condition& condition, const Schema& variables,
                     std::vector<Schema> substituted);

  /// Theorem 4.2 test: returns false iff `C(t1, …, tk, Y2)` is provably
  /// unsatisfiable — i.e. the simultaneous update is irrelevant to the view
  /// for every database state.  `tuples[i]` instantiates `substituted[i]`.
  bool MightBeRelevant(const std::vector<const Tuple*>& tuples) const;

  /// Theorem 4.1 convenience for a single substituted scheme.
  bool MightBeRelevant(const Tuple& tuple) const;

  /// True when the filter proved at compile time that *every* update is
  /// relevant (some disjunct has no variant atoms and a satisfiable
  /// invariant part).
  bool always_relevant() const { return always_relevant_; }

  /// True when the filter proved at compile time that *no* update is
  /// relevant (every disjunct's invariant part is unsatisfiable — the view
  /// is empty in every database state).
  bool never_relevant() const { return disjuncts_.empty() && !always_relevant_; }

  /// Compile-time statistics (for diagnostics and the benchmark tables).
  struct Stats {
    size_t input_disjuncts = 0;
    size_t dropped_disjuncts = 0;      // invariant part unsatisfiable
    size_t invariant_atoms = 0;        // Definition 4.2 (2)
    size_t variant_evaluable = 0;      // Definition 4.2 (1), ground
    size_t variant_non_evaluable = 0;  // Definition 4.2 (1), x op c
    size_t conservative_atoms = 0;     // outside the RH class, not ground
  };
  const Stats& stats() const { return stats_; }

 private:
  // Where a substituted variable's value comes from: tuple `relation`,
  // attribute position `attr`.
  struct Slot {
    size_t relation = 0;
    size_t attr = 0;
  };

  // A ground-after-substitution comparison.
  struct EvalAtom {
    Slot lhs;
    CompareOp op = CompareOp::kEq;
    bool rhs_is_slot = false;
    Slot rhs;
    Value rhs_const;
    int64_t offset = 0;  // lhs op rhs + offset (integers only)
  };

  // A variant non-evaluable atom compiled to a constraint-graph edge whose
  // weight is `coeff * value(slot) + bias`.
  struct EdgeTemplate {
    size_t from = 0;
    size_t to = 0;
    int64_t coeff = 0;
    int64_t bias = 0;
    Slot slot;
  };

  struct CompiledDisjunct {
    std::vector<EvalAtom> eval_atoms;
    std::vector<EdgeTemplate> edge_templates;
    ConstraintGraph invariant;
    size_t num_nodes = 0;
  };

  bool FindSlot(const std::string& var, Slot* slot) const;
  void CompileDisjunct(const Conjunction& disjunct);
  bool EvaluateAtom(const EvalAtom& atom,
                    const std::vector<const Tuple*>& tuples) const;
  static const Value& SlotValue(const Slot& slot,
                                const std::vector<const Tuple*>& tuples);

  Schema variables_;
  std::vector<Schema> substituted_;
  std::vector<CompiledDisjunct> disjuncts_;
  bool always_relevant_ = false;
  Stats stats_;
  mutable std::vector<int64_t> scratch_;
  mutable std::vector<GraphEdge> edge_scratch_;
};

}  // namespace mview

#endif  // MVIEW_PREDICATE_SUBSTITUTION_H_
