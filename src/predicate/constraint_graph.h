#ifndef MVIEW_PREDICATE_CONSTRAINT_GRAPH_H_
#define MVIEW_PREDICATE_CONSTRAINT_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mview {

/// A weighted edge in a constraint graph: `to − from ≤ weight`
/// (equivalently, shortest-path edge `from → to`).
struct GraphEdge {
  size_t from = 0;
  size_t to = 0;
  int64_t weight = 0;
};

/// The directed weighted graph of Section 4 / [RH80].
///
/// Node 0 is the distinguished zero node; nodes `1..n` are the variables of
/// the conjunction under test.  The difference constraint `x − y ≤ c` is the
/// edge `y → x` with weight `c`; the conjunction is unsatisfiable over the
/// integers iff the graph contains a negative-weight cycle.
///
/// Two detection algorithms are provided:
///  - `Close()` runs Floyd's all-pairs shortest-path algorithm [F62]
///    (`O(n³)`, the paper's choice) and records the full distance closure,
///    which `WouldAddedEdgesCreateNegativeCycle` then extends incrementally
///    per tuple in `O(|edges|·n²)` — the amortization behind Algorithm 4.1.
///  - `HasNegativeCycleBellmanFord()` runs Bellman–Ford from a virtual
///    source (`O(n·e)`), provided as the comparison point for bench E1.
class ConstraintGraph {
 public:
  /// Creates a graph over `num_nodes` nodes (including the zero node).
  explicit ConstraintGraph(size_t num_nodes);

  size_t num_nodes() const { return n_; }

  /// Adds edge `from → to` with `weight`, keeping the minimum weight for
  /// parallel edges.
  void AddEdge(size_t from, size_t to, int64_t weight);

  /// Runs Floyd–Warshall and caches the closure.  Returns true when the
  /// graph contains a negative cycle (i.e. the constraints are
  /// unsatisfiable).  Idempotent.
  bool Close();

  /// Returns true when `Close()` found a negative cycle.
  bool has_negative_cycle() const { return negative_cycle_; }

  /// Returns the closed shortest-path distance `from → to` (saturated
  /// "infinity" when unreachable).  Requires a prior `Close()`.
  int64_t Dist(size_t from, size_t to) const;

  /// Tests whether adding `edges` to the *closed* graph would create a
  /// negative cycle, without mutating this graph.  `scratch` is caller-owned
  /// scratch space reused across calls (resized as needed).
  ///
  /// This is the per-tuple step of Algorithm 4.1: the invariant portion of
  /// the condition is closed once; the variant edges induced by each updated
  /// tuple are layered on top in `O(|edges|·n²)`.
  bool WouldAddedEdgesCreateNegativeCycle(const std::vector<GraphEdge>& edges,
                                          std::vector<int64_t>* scratch) const;

  /// Negative-cycle detection by Bellman–Ford (no closure computed).
  bool HasNegativeCycleBellmanFord() const;

  /// Returns the edges of one negative-weight cycle in the graph formed by
  /// this graph's edges plus `extra`, in traversal order (each edge's `to`
  /// is the next edge's `from`, wrapping around), or an empty vector when
  /// no negative cycle exists.  Bellman–Ford with predecessor tracking;
  /// does not require `Close()` and never mutates the graph.
  ///
  /// This is the audit channel for Theorem 4.1: when a substituted
  /// conjunction is unsatisfiable, the returned cycle *is* the proof —
  /// summing its weights gives the negative total that contradicts
  /// `x − x ≤ 0`.
  std::vector<GraphEdge> FindNegativeCycle(
      const std::vector<GraphEdge>& extra = {}) const;

  /// The saturated infinity used in distance matrices.
  static constexpr int64_t kInfinity = INT64_MAX / 4;

  /// Saturating addition that never overflows past kInfinity.
  static int64_t SatAdd(int64_t a, int64_t b);

 private:
  size_t n_;
  std::vector<int64_t> dist_;  // n_*n_ matrix, row-major
  std::vector<GraphEdge> edges_;
  bool closed_ = false;
  bool negative_cycle_ = false;
};

}  // namespace mview

#endif  // MVIEW_PREDICATE_CONSTRAINT_GRAPH_H_
