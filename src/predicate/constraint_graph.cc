#include "predicate/constraint_graph.h"

#include <algorithm>

#include "util/error.h"

namespace mview {

ConstraintGraph::ConstraintGraph(size_t num_nodes) : n_(num_nodes) {
  MVIEW_CHECK(n_ >= 1, "graph needs at least the zero node");
  dist_.assign(n_ * n_, kInfinity);
  for (size_t i = 0; i < n_; ++i) dist_[i * n_ + i] = 0;
}

int64_t ConstraintGraph::SatAdd(int64_t a, int64_t b) {
  if (a >= kInfinity || b >= kInfinity) return kInfinity;
  int64_t sum = a + b;  // |a|,|b| < INT64_MAX/4, so no UB here
  if (sum > kInfinity) return kInfinity;
  if (sum < -kInfinity) return -kInfinity;
  return sum;
}

void ConstraintGraph::AddEdge(size_t from, size_t to, int64_t weight) {
  MVIEW_CHECK(!closed_, "cannot add edges after Close()");
  MVIEW_CHECK(from < n_ && to < n_, "edge endpoint out of range");
  int64_t& cell = dist_[from * n_ + to];
  cell = std::min(cell, weight);
  edges_.push_back({from, to, weight});
}

bool ConstraintGraph::Close() {
  if (closed_) return negative_cycle_;
  // Floyd's algorithm [F62]: all-pairs shortest paths in O(n^3).
  for (size_t k = 0; k < n_; ++k) {
    for (size_t i = 0; i < n_; ++i) {
      int64_t dik = dist_[i * n_ + k];
      if (dik >= kInfinity) continue;
      for (size_t j = 0; j < n_; ++j) {
        int64_t via = SatAdd(dik, dist_[k * n_ + j]);
        int64_t& cell = dist_[i * n_ + j];
        if (via < cell) cell = via;
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    if (dist_[i * n_ + i] < 0) {
      negative_cycle_ = true;
      break;
    }
  }
  closed_ = true;
  return negative_cycle_;
}

int64_t ConstraintGraph::Dist(size_t from, size_t to) const {
  MVIEW_CHECK(closed_, "Dist() requires Close()");
  MVIEW_CHECK(from < n_ && to < n_, "node out of range");
  return dist_[from * n_ + to];
}

bool ConstraintGraph::WouldAddedEdgesCreateNegativeCycle(
    const std::vector<GraphEdge>& edges, std::vector<int64_t>* scratch) const {
  MVIEW_CHECK(closed_, "incremental check requires Close()");
  if (negative_cycle_) return true;
  if (edges.empty()) return false;
  // Fast path for a single edge: a negative cycle must traverse it, and the
  // cheapest such cycle costs weight + dist(to, from).
  if (edges.size() == 1) {
    const GraphEdge& e = edges[0];
    return SatAdd(e.weight, dist_[e.to * n_ + e.from]) < 0;
  }
  std::vector<int64_t>& d = *scratch;
  d.assign(dist_.begin(), dist_.end());
  for (const GraphEdge& e : edges) {
    // Any negative cycle through e alone shows up before re-closing.
    if (SatAdd(e.weight, d[e.to * n_ + e.from]) < 0) return true;
    // Re-close the matrix with e incorporated so subsequent edges see it:
    // d'[i][j] = min(d[i][j], d[i][from] + w + d[to][j]).
    for (size_t i = 0; i < n_; ++i) {
      int64_t pre = SatAdd(d[i * n_ + e.from], e.weight);
      if (pre >= kInfinity) continue;
      for (size_t j = 0; j < n_; ++j) {
        int64_t via = SatAdd(pre, d[e.to * n_ + j]);
        int64_t& cell = d[i * n_ + j];
        if (via < cell) cell = via;
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    if (d[i * n_ + i] < 0) return true;
  }
  return false;
}

std::vector<GraphEdge> ConstraintGraph::FindNegativeCycle(
    const std::vector<GraphEdge>& extra) const {
  std::vector<GraphEdge> all(edges_);
  all.insert(all.end(), extra.begin(), extra.end());
  for (const GraphEdge& e : all) {
    MVIEW_CHECK(e.from < n_ && e.to < n_, "edge endpoint out of range");
  }
  // Bellman–Ford from a virtual source (all distances start at 0), keeping
  // for every node the edge that last improved it.  After n passes any
  // further relaxation proves a negative cycle reachable from the relaxed
  // node's predecessor chain.
  std::vector<int64_t> d(n_, 0);
  std::vector<size_t> pred(n_, SIZE_MAX);
  size_t witness = SIZE_MAX;
  for (size_t pass = 0; pass < n_; ++pass) {
    witness = SIZE_MAX;
    for (size_t idx = 0; idx < all.size(); ++idx) {
      const GraphEdge& e = all[idx];
      int64_t via = SatAdd(d[e.from], e.weight);
      if (via < d[e.to]) {
        d[e.to] = via;
        pred[e.to] = idx;
        witness = e.to;
      }
    }
    if (witness == SIZE_MAX) return {};  // converged: no negative cycle
  }
  // `witness` was relaxed on the n-th pass, so its predecessor chain leads
  // into a negative cycle; walking n steps lands strictly inside it.
  size_t node = witness;
  for (size_t i = 0; i < n_; ++i) node = all[pred[node]].from;
  std::vector<GraphEdge> cycle;
  size_t cur = node;
  do {
    const GraphEdge& e = all[pred[cur]];
    cycle.push_back(e);
    cur = e.from;
  } while (cur != node && cycle.size() <= n_ + all.size());
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

bool ConstraintGraph::HasNegativeCycleBellmanFord() const {
  // Virtual source with zero-weight edges to every node: start all at 0.
  std::vector<int64_t> d(n_, 0);
  for (size_t pass = 0; pass + 1 < n_; ++pass) {
    bool changed = false;
    for (const GraphEdge& e : edges_) {
      int64_t via = SatAdd(d[e.from], e.weight);
      if (via < d[e.to]) {
        d[e.to] = via;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  for (const GraphEdge& e : edges_) {
    if (SatAdd(d[e.from], e.weight) < d[e.to]) return true;
  }
  return false;
}

}  // namespace mview
