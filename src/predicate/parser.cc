#include "predicate/parser.h"

#include <cctype>
#include <memory>

#include "util/error.h"

namespace mview {
namespace {

// Internal parse tree with arbitrary nesting; flattened to DNF at the end.
struct Node {
  enum Kind { kAtom, kAnd, kOr, kNot, kTrue, kFalse } kind;
  Atom atom;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;
};

std::unique_ptr<Node> MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<Node> Parse() {
    auto node = ParseOr();
    SkipSpace();
    MVIEW_CHECK(pos_ == text_.size(), "trailing input in condition at offset ",
                pos_, ": '", text_.substr(pos_), "'");
    return node;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(const char* token) {
    SkipSpace();
    size_t len = std::char_traits<char>::length(token);
    if (text_.compare(pos_, len, token) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::unique_ptr<Node> ParseOr() {
    auto left = ParseAnd();
    while (Consume("||")) {
      auto node = MakeNode(Node::kOr);
      node->left = std::move(left);
      node->right = ParseAnd();
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<Node> ParseAnd() {
    auto left = ParseUnary();
    while (Consume("&&")) {
      auto node = MakeNode(Node::kAnd);
      node->left = std::move(left);
      node->right = ParseUnary();
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<Node> ParseUnary() {
    if (Consume("!")) {
      // Guard against consuming the '!' of '!=' (cannot happen: an atom
      // starts with an identifier, so a bare '!' here is a negation).
      auto node = MakeNode(Node::kNot);
      node->left = ParseUnary();
      return node;
    }
    if (Consume("(")) {
      auto node = ParseOr();
      MVIEW_CHECK(Consume(")"), "expected ')' at offset ", pos_);
      return node;
    }
    return ParseAtom();
  }

  std::string ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    MVIEW_CHECK(pos_ > start, "expected identifier at offset ", start);
    char first = text_[start];
    MVIEW_CHECK(!std::isdigit(static_cast<unsigned char>(first)),
                "identifier cannot start with a digit at offset ", start);
    return text_.substr(start, pos_ - start);
  }

  int64_t ParseInt() {
    SkipSpace();
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    MVIEW_CHECK(pos_ > start && (pos_ > start + 1 || text_[start] != '-'),
                "expected integer at offset ", start);
    return std::stoll(text_.substr(start, pos_ - start));
  }

  CompareOp ParseOp() {
    if (Consume("==") || Consume("=")) return CompareOp::kEq;
    if (Consume("!=") || Consume("<>")) return CompareOp::kNe;
    if (Consume("<=")) return CompareOp::kLe;
    if (Consume(">=")) return CompareOp::kGe;
    if (Consume("<")) return CompareOp::kLt;
    if (Consume(">")) return CompareOp::kGt;
    internal::ThrowError("expected comparison operator at offset ", pos_);
  }

  std::unique_ptr<Node> ParseAtom() {
    char c = Peek();
    MVIEW_CHECK(c != '\0', "unexpected end of condition");
    std::string lhs = ParseIdent();
    if (lhs == "true") return MakeNode(Node::kTrue);
    if (lhs == "false") return MakeNode(Node::kFalse);
    CompareOp op = ParseOp();
    auto node = MakeNode(Node::kAtom);
    SkipSpace();
    char r = Peek();
    if (r == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      MVIEW_CHECK(pos_ < text_.size(), "unterminated string literal");
      std::string s = text_.substr(start, pos_ - start);
      ++pos_;
      node->atom = Atom::VarConst(std::move(lhs), op, Value(std::move(s)));
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(r)) || r == '-') {
      node->atom = Atom::VarConst(std::move(lhs), op, Value(ParseInt()));
      return node;
    }
    std::string rhs = ParseIdent();
    int64_t offset = 0;
    if (Consume("+")) {
      offset = ParseInt();
    } else {
      SkipSpace();
      // A '-' here is an offset subtraction, e.g. "A <= B - 2".
      if (pos_ < text_.size() && text_[pos_] == '-') {
        ++pos_;
        offset = -ParseInt();
      }
    }
    node->atom = Atom::VarVar(std::move(lhs), op, std::move(rhs), offset);
    return node;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Converts the parse tree into DNF, pushing negation down to atoms.
Condition ToDnf(const Node& node, bool negated) {
  switch (node.kind) {
    case Node::kTrue:
      return negated ? Condition::False() : Condition::True();
    case Node::kFalse:
      return negated ? Condition::True() : Condition::False();
    case Node::kAtom:
      return Condition::FromAtom(negated ? node.atom.Negated() : node.atom);
    case Node::kNot:
      return ToDnf(*node.left, !negated);
    case Node::kAnd: {
      Condition l = ToDnf(*node.left, negated);
      Condition r = ToDnf(*node.right, negated);
      return negated ? l.Or(r) : l.And(r);  // De Morgan
    }
    case Node::kOr: {
      Condition l = ToDnf(*node.left, negated);
      Condition r = ToDnf(*node.right, negated);
      return negated ? l.And(r) : l.Or(r);
    }
  }
  internal::ThrowError("corrupt parse tree");
}

}  // namespace

Condition ParseCondition(const std::string& text) {
  Parser parser(text);
  auto tree = parser.Parse();
  return ToDnf(*tree, /*negated=*/false);
}

}  // namespace mview
