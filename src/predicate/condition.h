#ifndef MVIEW_PREDICATE_CONDITION_H_
#define MVIEW_PREDICATE_CONDITION_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace mview {

/// Comparison operators of the condition language.
///
/// The Rosenkrantz–Hunt class used by the satisfiability machinery of
/// Section 4 admits `{=, <, >, ≤, ≥}`; `≠` is allowed in view definitions
/// (the differential algorithms evaluate it exactly) but excludes an atom
/// from the efficient unsatisfiability test.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the SQL-ish spelling of an operator ("=", "!=", "<", ...).
const char* CompareOpName(CompareOp op);

/// Applies `op` to a three-way comparison result.
bool EvalCompare(int cmp, CompareOp op);

/// An atomic formula: `x op c`, `x op y`, or `x op y + c` (Section 4).
///
/// `lhs` is always a variable (an attribute name).  When `rhs_var` is set the
/// atom compares two variables with an optional integer offset `offset`
/// (non-zero offsets require integer attributes); otherwise the atom compares
/// `lhs` against the constant `rhs_const`.
struct Atom {
  std::string lhs;
  CompareOp op = CompareOp::kEq;
  std::optional<std::string> rhs_var;
  Value rhs_const;     // comparand when rhs_var is empty
  int64_t offset = 0;  // the `c` of `x op y + c`; only with rhs_var

  /// Makes `x op constant`.
  static Atom VarConst(std::string lhs, CompareOp op, Value c);

  /// Makes `x op y + offset`.
  static Atom VarVar(std::string lhs, CompareOp op, std::string rhs,
                     int64_t offset = 0);

  /// Returns true when both sides are variables.
  bool IsVarVar() const { return rhs_var.has_value(); }

  /// Evaluates the atom against a tuple described by `schema`.
  bool Evaluate(const Schema& schema, const Tuple& tuple) const;

  /// Returns the atom with its comparison logically negated
  /// (`<` ↔ `≥`, `=` ↔ `≠`, ...).
  Atom Negated() const;

  bool operator==(const Atom& other) const;

  /// Renders as "A <= B + 3" or "A = 7".
  std::string ToString() const;
};

/// A conjunction of atomic formulae.  An empty conjunction is `true`.
struct Conjunction {
  std::vector<Atom> atoms;

  bool Evaluate(const Schema& schema, const Tuple& tuple) const;
  std::string ToString() const;
};

/// A selection condition in disjunctive normal form: `C1 ∨ C2 ∨ … ∨ Cm`
/// where each `Ci` is a conjunction of atomic formulae (Section 4).
///
/// A condition with no disjuncts is `false`; `Condition::True()` is the
/// single empty conjunction.
class Condition {
 public:
  /// Constructs `false`.
  Condition() = default;

  /// Constructs a DNF condition from disjuncts.
  explicit Condition(std::vector<Conjunction> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  /// The always-true condition.
  static Condition True();

  /// The always-false condition.
  static Condition False();

  /// A condition with the single atom `atom`.
  static Condition FromAtom(Atom atom);

  const std::vector<Conjunction>& disjuncts() const { return disjuncts_; }
  bool IsTriviallyTrue() const;
  bool IsTriviallyFalse() const { return disjuncts_.empty(); }

  /// Logical AND; distributes to keep DNF (m1 * m2 disjuncts).
  Condition And(const Condition& other) const;

  /// Logical OR; concatenates disjunct lists.
  Condition Or(const Condition& other) const;

  /// Evaluates against a tuple described by `schema`.
  bool Evaluate(const Schema& schema, const Tuple& tuple) const;

  /// Returns the set of variables mentioned anywhere in the condition
  /// (the paper's `α(C)`).
  std::set<std::string> Variables() const;

  /// Validates that every variable resolves in `schema`, that compared
  /// attributes have matching types, and that offsets only appear on
  /// integer comparisons.  Throws `Error` on violations.
  void Validate(const Schema& schema) const;

  /// Renders as "(A < 10 && B = C) || (D >= E + 2)".
  std::string ToString() const;

 private:
  std::vector<Conjunction> disjuncts_;
};

/// Returns true when the atom is in the Rosenkrantz–Hunt class relative to
/// `schema`: integer-typed on both sides and not `≠`.
bool IsRhAtom(const Atom& atom, const Schema& schema);

/// Returns true when every atom of every disjunct is an RH atom, i.e. the
/// whole condition enjoys the `O(m·n³)` satisfiability test of Section 4.
bool IsRhCondition(const Condition& condition, const Schema& schema);

}  // namespace mview

#endif  // MVIEW_PREDICATE_CONDITION_H_
