#ifndef MVIEW_PREDICATE_NORMALIZE_H_
#define MVIEW_PREDICATE_NORMALIZE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "predicate/condition.h"

namespace mview {

/// A normalized atomic formula: `x − y ≤ c`, where either side may be the
/// distinguished zero node (absent variable).
///
/// Section 4 normalizes every RH atom so that only `≤`/`≥` appear, folding
/// strict comparisons into the constant using the discreteness of the
/// domains (`x < y + c` becomes `x ≤ y + c − 1`) and splitting equalities
/// into two inequalities.  We carry the constraints in the canonical
/// difference form `x − y ≤ c`; in graph terms this is an edge `y → x` with
/// weight `c`, and the conjunction is unsatisfiable over the integers iff
/// the graph has a negative-weight cycle.
struct DifferenceConstraint {
  std::optional<std::string> x;  // nullopt denotes the zero node
  std::optional<std::string> y;
  int64_t c = 0;

  std::string ToString() const;
};

/// Normalizes one RH atom into one or two difference constraints.
/// Throws `Error` when the atom is not in the RH class (`≠`, strings).
std::vector<DifferenceConstraint> NormalizeAtom(const Atom& atom);

/// Normalizes every atom of a conjunction.  Throws on non-RH atoms.
std::vector<DifferenceConstraint> NormalizeConjunction(
    const Conjunction& conjunction);

}  // namespace mview

#endif  // MVIEW_PREDICATE_NORMALIZE_H_
