#include "predicate/satisfiability.h"

#include "predicate/normalize.h"
#include "util/error.h"

namespace mview {
namespace internal {

size_t NumberVariables(const Conjunction& conjunction,
                       std::unordered_map<std::string, size_t>* graph_nodes) {
  graph_nodes->clear();
  size_t next = 1;  // node 0 is the zero node
  auto assign = [&](const std::string& name) {
    if (graph_nodes->emplace(name, next).second) ++next;
  };
  for (const auto& atom : conjunction.atoms) {
    assign(atom.lhs);
    if (atom.rhs_var.has_value()) assign(*atom.rhs_var);
  }
  return next;
}

namespace {

size_t NodeOf(const std::optional<std::string>& var,
              const std::unordered_map<std::string, size_t>& nodes) {
  if (!var.has_value()) return 0;
  return nodes.at(*var);
}

// Builds the constraint graph of a pure-RH conjunction and decides it.
bool RhConjunctionSatisfiable(const Conjunction& conjunction,
                              SatAlgorithm algorithm) {
  std::unordered_map<std::string, size_t> nodes;
  size_t n = NumberVariables(conjunction, &nodes);
  ConstraintGraph graph(n);
  for (const auto& dc : NormalizeConjunction(conjunction)) {
    // x − y ≤ c is the edge y → x with weight c.
    graph.AddEdge(NodeOf(dc.y, nodes), NodeOf(dc.x, nodes), dc.c);
  }
  bool negative = algorithm == SatAlgorithm::kFloydWarshall
                      ? graph.Close()
                      : graph.HasNegativeCycleBellmanFord();
  return !negative;
}

}  // namespace
}  // namespace internal

bool IsConjunctionSatisfiable(const Conjunction& conjunction,
                              const Schema& variables,
                              SatAlgorithm algorithm) {
  for (const auto& atom : conjunction.atoms) {
    MVIEW_CHECK(IsRhAtom(atom, variables),
                "atom outside the Rosenkrantz–Hunt class: ", atom.ToString());
  }
  return internal::RhConjunctionSatisfiable(conjunction, algorithm);
}

bool IsConditionSatisfiable(const Condition& condition,
                            const Schema& variables, SatAlgorithm algorithm) {
  for (const auto& disjunct : condition.disjuncts()) {
    if (IsConjunctionSatisfiable(disjunct, variables, algorithm)) return true;
  }
  return false;
}

Satisfiability CheckConjunction(const Conjunction& conjunction,
                                const Schema& variables,
                                SatAlgorithm algorithm) {
  Conjunction rh_subset;
  bool complete = true;
  for (const auto& atom : conjunction.atoms) {
    if (IsRhAtom(atom, variables)) {
      rh_subset.atoms.push_back(atom);
    } else {
      complete = false;
    }
  }
  bool sat = internal::RhConjunctionSatisfiable(rh_subset, algorithm);
  if (!sat) return Satisfiability::kUnsatisfiable;
  return complete ? Satisfiability::kSatisfiable : Satisfiability::kUnknown;
}

Satisfiability CheckCondition(const Condition& condition,
                              const Schema& variables,
                              SatAlgorithm algorithm) {
  bool any_unknown = false;
  for (const auto& disjunct : condition.disjuncts()) {
    switch (CheckConjunction(disjunct, variables, algorithm)) {
      case Satisfiability::kSatisfiable:
        return Satisfiability::kSatisfiable;
      case Satisfiability::kUnknown:
        any_unknown = true;
        break;
      case Satisfiability::kUnsatisfiable:
        break;
    }
  }
  return any_unknown ? Satisfiability::kUnknown
                     : Satisfiability::kUnsatisfiable;
}

}  // namespace mview
