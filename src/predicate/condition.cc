#include "predicate/condition.h"

#include <sstream>

#include "util/error.h"

namespace mview {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Atom Atom::VarConst(std::string lhs, CompareOp op, Value c) {
  Atom a;
  a.lhs = std::move(lhs);
  a.op = op;
  a.rhs_const = std::move(c);
  return a;
}

Atom Atom::VarVar(std::string lhs, CompareOp op, std::string rhs,
                  int64_t offset) {
  Atom a;
  a.lhs = std::move(lhs);
  a.op = op;
  a.rhs_var = std::move(rhs);
  a.offset = offset;
  return a;
}

bool Atom::Evaluate(const Schema& schema, const Tuple& tuple) const {
  const Value& left = tuple.at(schema.MustIndexOf(lhs));
  if (!rhs_var.has_value()) {
    return EvalCompare(left.Compare(rhs_const), op);
  }
  const Value& right = tuple.at(schema.MustIndexOf(*rhs_var));
  if (offset == 0) return EvalCompare(left.Compare(right), op);
  // x op y + c with integer attributes: compare x - c against y to avoid
  // overflowing y + c.
  return EvalCompare(Value(left.AsInt64() - offset).Compare(right), op);
}

Atom Atom::Negated() const {
  Atom a = *this;
  switch (op) {
    case CompareOp::kEq:
      a.op = CompareOp::kNe;
      break;
    case CompareOp::kNe:
      a.op = CompareOp::kEq;
      break;
    case CompareOp::kLt:
      a.op = CompareOp::kGe;
      break;
    case CompareOp::kLe:
      a.op = CompareOp::kGt;
      break;
    case CompareOp::kGt:
      a.op = CompareOp::kLe;
      break;
    case CompareOp::kGe:
      a.op = CompareOp::kLt;
      break;
  }
  return a;
}

bool Atom::operator==(const Atom& other) const {
  return lhs == other.lhs && op == other.op && rhs_var == other.rhs_var &&
         rhs_const == other.rhs_const && offset == other.offset;
}

std::string Atom::ToString() const {
  std::ostringstream os;
  os << lhs << " " << CompareOpName(op) << " ";
  if (rhs_var.has_value()) {
    os << *rhs_var;
    if (offset > 0) os << " + " << offset;
    if (offset < 0) os << " - " << -offset;
  } else {
    os << rhs_const;
  }
  return os.str();
}

bool Conjunction::Evaluate(const Schema& schema, const Tuple& tuple) const {
  for (const auto& atom : atoms) {
    if (!atom.Evaluate(schema, tuple)) return false;
  }
  return true;
}

std::string Conjunction::ToString() const {
  if (atoms.empty()) return "true";
  std::ostringstream os;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) os << " && ";
    os << atoms[i].ToString();
  }
  return os.str();
}

Condition Condition::True() { return Condition({Conjunction{}}); }

Condition Condition::False() { return Condition(); }

Condition Condition::FromAtom(Atom atom) {
  return Condition({Conjunction{{std::move(atom)}}});
}

bool Condition::IsTriviallyTrue() const {
  for (const auto& d : disjuncts_) {
    if (d.atoms.empty()) return true;
  }
  return false;
}

Condition Condition::And(const Condition& other) const {
  std::vector<Conjunction> out;
  out.reserve(disjuncts_.size() * other.disjuncts_.size());
  for (const auto& a : disjuncts_) {
    for (const auto& b : other.disjuncts_) {
      Conjunction c;
      c.atoms = a.atoms;
      c.atoms.insert(c.atoms.end(), b.atoms.begin(), b.atoms.end());
      out.push_back(std::move(c));
    }
  }
  return Condition(std::move(out));
}

Condition Condition::Or(const Condition& other) const {
  std::vector<Conjunction> out = disjuncts_;
  out.insert(out.end(), other.disjuncts_.begin(), other.disjuncts_.end());
  return Condition(std::move(out));
}

bool Condition::Evaluate(const Schema& schema, const Tuple& tuple) const {
  for (const auto& d : disjuncts_) {
    if (d.Evaluate(schema, tuple)) return true;
  }
  return false;
}

std::set<std::string> Condition::Variables() const {
  std::set<std::string> vars;
  for (const auto& d : disjuncts_) {
    for (const auto& a : d.atoms) {
      vars.insert(a.lhs);
      if (a.rhs_var.has_value()) vars.insert(*a.rhs_var);
    }
  }
  return vars;
}

void Condition::Validate(const Schema& schema) const {
  for (const auto& d : disjuncts_) {
    for (const auto& a : d.atoms) {
      size_t li = schema.MustIndexOf(a.lhs);
      ValueType lt = schema.attribute(li).type;
      if (a.rhs_var.has_value()) {
        size_t ri = schema.MustIndexOf(*a.rhs_var);
        ValueType rt = schema.attribute(ri).type;
        MVIEW_CHECK(lt == rt, "type mismatch in atom ", a.ToString());
        MVIEW_CHECK(a.offset == 0 || lt == ValueType::kInt64,
                    "offset on non-integer atom ", a.ToString());
      } else {
        MVIEW_CHECK(lt == a.rhs_const.type(), "type mismatch in atom ",
                    a.ToString());
        MVIEW_CHECK(a.offset == 0, "offset on constant atom ", a.ToString());
      }
    }
  }
}

std::string Condition::ToString() const {
  if (disjuncts_.empty()) return "false";
  std::ostringstream os;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) os << " || ";
    if (disjuncts_.size() > 1) os << "(" << disjuncts_[i].ToString() << ")";
    else os << disjuncts_[i].ToString();
  }
  return os.str();
}

bool IsRhAtom(const Atom& atom, const Schema& schema) {
  if (atom.op == CompareOp::kNe) return false;
  if (schema.attribute(schema.MustIndexOf(atom.lhs)).type !=
      ValueType::kInt64) {
    return false;
  }
  if (atom.rhs_var.has_value()) {
    return schema.attribute(schema.MustIndexOf(*atom.rhs_var)).type ==
           ValueType::kInt64;
  }
  return atom.rhs_const.type() == ValueType::kInt64;
}

bool IsRhCondition(const Condition& condition, const Schema& schema) {
  for (const auto& d : condition.disjuncts()) {
    for (const auto& a : d.atoms) {
      if (!IsRhAtom(a, schema)) return false;
    }
  }
  return true;
}

}  // namespace mview
