#include "predicate/normalize.h"

#include <sstream>

#include "util/error.h"

namespace mview {

std::string DifferenceConstraint::ToString() const {
  std::ostringstream os;
  os << (x.has_value() ? *x : "0") << " - " << (y.has_value() ? *y : "0")
     << " <= " << c;
  return os.str();
}

std::vector<DifferenceConstraint> NormalizeAtom(const Atom& atom) {
  MVIEW_CHECK(atom.op != CompareOp::kNe,
              "cannot normalize a '≠' atom: ", atom.ToString());
  std::optional<std::string> x = atom.lhs;
  std::optional<std::string> y;
  int64_t c;
  if (atom.rhs_var.has_value()) {
    y = *atom.rhs_var;
    c = atom.offset;
  } else {
    MVIEW_CHECK(atom.rhs_const.type() == ValueType::kInt64,
                "cannot normalize non-integer atom: ", atom.ToString());
    c = atom.rhs_const.AsInt64();
  }
  // The atom is now `x op y + c` with y possibly the zero node.
  std::vector<DifferenceConstraint> out;
  switch (atom.op) {
    case CompareOp::kLe:  // x - y <= c
      out.push_back({x, y, c});
      break;
    case CompareOp::kLt:  // x - y <= c - 1
      out.push_back({x, y, c - 1});
      break;
    case CompareOp::kGe:  // y - x <= -c
      out.push_back({y, x, -c});
      break;
    case CompareOp::kGt:  // y - x <= -c - 1
      out.push_back({y, x, -c - 1});
      break;
    case CompareOp::kEq:  // both directions
      out.push_back({x, y, c});
      out.push_back({y, x, -c});
      break;
    case CompareOp::kNe:
      break;  // unreachable, checked above
  }
  return out;
}

std::vector<DifferenceConstraint> NormalizeConjunction(
    const Conjunction& conjunction) {
  std::vector<DifferenceConstraint> out;
  for (const auto& atom : conjunction.atoms) {
    auto cs = NormalizeAtom(atom);
    out.insert(out.end(), cs.begin(), cs.end());
  }
  return out;
}

}  // namespace mview
