#ifndef MVIEW_PREDICATE_PARSER_H_
#define MVIEW_PREDICATE_PARSER_H_

#include <string>

#include "predicate/condition.h"

namespace mview {

/// Parses a textual selection condition into DNF.
///
/// Grammar (usual precedence, `&&` binds tighter than `||`):
///
///     condition := or
///     or        := and ( "||" and )*
///     and       := unary ( "&&" unary )*
///     unary     := "!" unary | "(" or ")" | "true" | "false" | atom
///     atom      := ident op ( ident (("+"|"-") int)? | int | string )
///     op        := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
///
/// Identifiers may contain dots (qualified names such as `emp.dept`).
/// Negation is pushed down to the atoms (`!(A < B)` becomes `A >= B`); note
/// that negating an equality yields `≠`, which removes the atom from the
/// Rosenkrantz–Hunt class (Section 4 excludes `≠`).  The result is expanded
/// into disjunctive normal form.  Throws `Error` on syntax errors.
Condition ParseCondition(const std::string& text);

}  // namespace mview

#endif  // MVIEW_PREDICATE_PARSER_H_
