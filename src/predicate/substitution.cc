#include "predicate/substitution.h"

#include <algorithm>
#include <unordered_map>

#include "predicate/normalize.h"
#include "util/error.h"

namespace mview {

FormulaClass ClassifyAtom(
    const Atom& atom,
    const std::function<bool(const std::string&)>& is_substituted) {
  bool lhs_sub = is_substituted(atom.lhs);
  if (!atom.rhs_var.has_value()) {
    return lhs_sub ? FormulaClass::kVariantEvaluable : FormulaClass::kInvariant;
  }
  bool rhs_sub = is_substituted(*atom.rhs_var);
  if (lhs_sub && rhs_sub) return FormulaClass::kVariantEvaluable;
  if (!lhs_sub && !rhs_sub) return FormulaClass::kInvariant;
  return FormulaClass::kVariantNonEvaluable;
}

namespace {

// Reflects an operator across the comparison: `a op b ⇔ b Reflect(op) a`.
CompareOp Reflect(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

int64_t ClampForGraph(int64_t v) {
  return std::clamp(v, -ConstraintGraph::kInfinity / 2,
                    ConstraintGraph::kInfinity / 2);
}

}  // namespace

SubstitutionFilter::SubstitutionFilter(const Condition& condition,
                                       const Schema& variables,
                                       std::vector<Schema> substituted)
    : variables_(variables), substituted_(std::move(substituted)) {
  condition.Validate(variables_);
  // The substituted schemes must be sub-schemes of `variables` and pairwise
  // attribute-disjoint (Definition 4.3: R_i ∩ R_j = ∅).
  for (size_t i = 0; i < substituted_.size(); ++i) {
    for (const auto& attr : substituted_[i].attributes()) {
      size_t idx = variables_.MustIndexOf(attr.name);
      MVIEW_CHECK(variables_.attribute(idx).type == attr.type,
                  "substituted attribute type mismatch: ", attr.name);
      for (size_t j = 0; j < i; ++j) {
        MVIEW_CHECK(!substituted_[j].Contains(attr.name),
                    "substituted schemes share attribute: ", attr.name);
      }
    }
  }
  stats_.input_disjuncts = condition.disjuncts().size();
  for (const auto& disjunct : condition.disjuncts()) {
    CompileDisjunct(disjunct);
    if (always_relevant_) break;
  }
  if (always_relevant_) disjuncts_.clear();
}

bool SubstitutionFilter::FindSlot(const std::string& var, Slot* slot) const {
  for (size_t i = 0; i < substituted_.size(); ++i) {
    if (auto idx = substituted_[i].IndexOf(var)) {
      slot->relation = i;
      slot->attr = *idx;
      return true;
    }
  }
  return false;
}

void SubstitutionFilter::CompileDisjunct(const Conjunction& disjunct) {
  CompiledDisjunct out{
      {}, {}, ConstraintGraph(1), 0};
  auto is_substituted = [this](const std::string& var) {
    Slot ignored;
    return FindSlot(var, &ignored);
  };

  // First pass: number the free variables that participate in RH atoms.
  std::unordered_map<std::string, size_t> nodes;
  size_t next_node = 1;
  auto node_of_free = [&](const std::string& var) {
    auto [it, inserted] = nodes.emplace(var, next_node);
    if (inserted) ++next_node;
    return it->second;
  };
  for (const auto& atom : disjunct.atoms) {
    if (!IsRhAtom(atom, variables_)) continue;
    if (!is_substituted(atom.lhs)) node_of_free(atom.lhs);
    if (atom.rhs_var.has_value() && !is_substituted(*atom.rhs_var)) {
      node_of_free(*atom.rhs_var);
    }
  }

  ConstraintGraph graph(next_node);
  bool compiles = true;  // becomes false only via dropped invariant part

  for (const auto& atom : disjunct.atoms) {
    FormulaClass cls = ClassifyAtom(atom, is_substituted);
    bool rh = IsRhAtom(atom, variables_);
    switch (cls) {
      case FormulaClass::kInvariant: {
        if (!rh) {
          // Cannot reason about it; assume satisfiable (sound).
          ++stats_.conservative_atoms;
          break;
        }
        ++stats_.invariant_atoms;
        for (const auto& dc : NormalizeAtom(atom)) {
          size_t from = dc.y.has_value() ? nodes.at(*dc.y) : 0;
          size_t to = dc.x.has_value() ? nodes.at(*dc.x) : 0;
          graph.AddEdge(from, to, dc.c);
        }
        break;
      }
      case FormulaClass::kVariantEvaluable: {
        ++stats_.variant_evaluable;
        EvalAtom ea;
        MVIEW_CHECK(FindSlot(atom.lhs, &ea.lhs), "slot lookup failed");
        ea.op = atom.op;
        ea.offset = atom.offset;
        if (atom.rhs_var.has_value()) {
          ea.rhs_is_slot = true;
          MVIEW_CHECK(FindSlot(*atom.rhs_var, &ea.rhs), "slot lookup failed");
        } else {
          ea.rhs_const = atom.rhs_const;
        }
        out.eval_atoms.push_back(std::move(ea));
        break;
      }
      case FormulaClass::kVariantNonEvaluable: {
        if (!rh) {
          ++stats_.conservative_atoms;
          break;
        }
        ++stats_.variant_non_evaluable;
        // The atom is `x op y + c` with exactly one side substituted.
        // Rewrite as `free_var op' (s * value + b)` = `f op' K`.
        Slot slot;
        std::string free_var;
        CompareOp op = atom.op;
        int64_t b;  // K = value + b (the coefficient of value is always +1)
        if (FindSlot(atom.lhs, &slot)) {
          // value op y + c  ⇔  y Reflect(op) value − c.
          free_var = *atom.rhs_var;
          op = Reflect(atom.op);
          b = -atom.offset;
        } else {
          // x op value + c.
          MVIEW_CHECK(FindSlot(*atom.rhs_var, &slot), "slot lookup failed");
          free_var = atom.lhs;
          b = atom.offset;
        }
        size_t nf = nodes.at(free_var);
        // Expand `f op K` into edge templates with weight = coeff*value+bias:
        //   f ≤ K  →  edge 0 → f, weight  K      (f − 0 ≤ K)
        //   f <  K  →  edge 0 → f, weight  K − 1
        //   f ≥ K  →  edge f → 0, weight −K
        //   f >  K  →  edge f → 0, weight −K − 1
        //   f =  K  →  both ≤ and ≥
        auto add_template = [&](bool upper, int64_t delta) {
          EdgeTemplate t;
          t.slot = slot;
          if (upper) {
            t.from = 0;
            t.to = nf;
            t.coeff = 1;
            t.bias = b + delta;
          } else {
            t.from = nf;
            t.to = 0;
            t.coeff = -1;
            t.bias = -b + delta;
          }
          out.edge_templates.push_back(t);
        };
        switch (op) {
          case CompareOp::kLe:
            add_template(true, 0);
            break;
          case CompareOp::kLt:
            add_template(true, -1);
            break;
          case CompareOp::kGe:
            add_template(false, 0);
            break;
          case CompareOp::kGt:
            add_template(false, -1);
            break;
          case CompareOp::kEq:
            add_template(true, 0);
            add_template(false, 0);
            break;
          case CompareOp::kNe:
            break;  // unreachable: RH excludes ≠
        }
        break;
      }
    }
  }

  if (graph.Close()) {
    // The invariant portion alone is unsatisfiable: the disjunct can never
    // be satisfied, for any update and any database state.
    ++stats_.dropped_disjuncts;
    compiles = false;
  }
  if (!compiles) return;
  if (out.eval_atoms.empty() && out.edge_templates.empty()) {
    // Nothing about this disjunct depends on the update: every update is
    // (potentially) relevant through it.
    always_relevant_ = true;
    return;
  }
  out.invariant = std::move(graph);
  out.num_nodes = next_node;
  disjuncts_.push_back(std::move(out));
}

const Value& SubstitutionFilter::SlotValue(
    const Slot& slot, const std::vector<const Tuple*>& tuples) {
  return tuples[slot.relation]->at(slot.attr);
}

bool SubstitutionFilter::EvaluateAtom(
    const EvalAtom& atom, const std::vector<const Tuple*>& tuples) const {
  const Value& lhs = SlotValue(atom.lhs, tuples);
  const Value& rhs =
      atom.rhs_is_slot ? SlotValue(atom.rhs, tuples) : atom.rhs_const;
  if (atom.offset == 0) return EvalCompare(lhs.Compare(rhs), atom.op);
  return EvalCompare(Value(lhs.AsInt64() - atom.offset).Compare(rhs),
                     atom.op);
}

bool SubstitutionFilter::MightBeRelevant(
    const std::vector<const Tuple*>& tuples) const {
  MVIEW_CHECK(tuples.size() == substituted_.size(),
              "expected one tuple per substituted scheme");
  for (size_t i = 0; i < tuples.size(); ++i) {
    MVIEW_CHECK(tuples[i] != nullptr &&
                tuples[i]->size() == substituted_[i].size(),
                "tuple does not match substituted scheme #", i);
  }
  if (always_relevant_) return true;
  for (const auto& disjunct : disjuncts_) {
    bool ground_ok = true;
    for (const auto& atom : disjunct.eval_atoms) {
      if (!EvaluateAtom(atom, tuples)) {
        ground_ok = false;
        break;
      }
    }
    if (!ground_ok) continue;
    edge_scratch_.clear();
    for (const auto& t : disjunct.edge_templates) {
      int64_t v = SlotValue(t.slot, tuples).AsInt64();
      int64_t weight =
          ClampForGraph(t.coeff * ClampForGraph(v) + ClampForGraph(t.bias));
      edge_scratch_.push_back({t.from, t.to, weight});
    }
    if (!disjunct.invariant.WouldAddedEdgesCreateNegativeCycle(edge_scratch_,
                                                               &scratch_)) {
      return true;  // C(t, Y2) satisfiable through this disjunct
    }
  }
  return false;  // unsatisfiable in every disjunct: irrelevant
}

bool SubstitutionFilter::MightBeRelevant(const Tuple& tuple) const {
  std::vector<const Tuple*> tuples{&tuple};
  return MightBeRelevant(tuples);
}

}  // namespace mview
