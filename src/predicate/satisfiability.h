#ifndef MVIEW_PREDICATE_SATISFIABILITY_H_
#define MVIEW_PREDICATE_SATISFIABILITY_H_

#include <string>
#include <unordered_map>

#include "predicate/condition.h"
#include "predicate/constraint_graph.h"

namespace mview {

/// Which algorithm decides negative cycles / unsatisfiability.
enum class SatAlgorithm {
  kFloydWarshall,  // the paper's choice [F62], O(n³)
  kBellmanFord,    // comparison baseline, O(n·e)
};

/// Three-valued satisfiability verdict.
///
/// `kUnknown` is returned when the condition contains atoms outside the
/// Rosenkrantz–Hunt class (strings, `≠`) whose satisfiability we do not
/// attempt to decide; callers that need soundness (the irrelevance filter)
/// treat `kUnknown` as satisfiable.
enum class Satisfiability { kSatisfiable, kUnsatisfiable, kUnknown };

/// Decides satisfiability of a conjunction of RH atoms over the integers.
/// Throws `Error` when the conjunction contains a non-RH atom relative to
/// `variables` (use `CheckConjunction` for the relaxed version).
bool IsConjunctionSatisfiable(
    const Conjunction& conjunction, const Schema& variables,
    SatAlgorithm algorithm = SatAlgorithm::kFloydWarshall);

/// Decides satisfiability of a DNF condition of RH atoms: satisfiable iff
/// some disjunct is (Section 4: `O(m·n³)`).  Throws on non-RH atoms.
bool IsConditionSatisfiable(
    const Condition& condition, const Schema& variables,
    SatAlgorithm algorithm = SatAlgorithm::kFloydWarshall);

/// Relaxed conjunction check: RH atoms are decided exactly; atoms outside
/// the class are skipped.  Returns `kUnsatisfiable` when the RH subset alone
/// is unsatisfiable (sound: a conjunction with an unsatisfiable subset is
/// unsatisfiable), `kSatisfiable` when all atoms are RH and jointly
/// satisfiable, and `kUnknown` otherwise.
Satisfiability CheckConjunction(
    const Conjunction& conjunction, const Schema& variables,
    SatAlgorithm algorithm = SatAlgorithm::kFloydWarshall);

/// Relaxed DNF check: `kSatisfiable` if some disjunct is satisfiable,
/// `kUnsatisfiable` if all are unsatisfiable, else `kUnknown`.
Satisfiability CheckCondition(
    const Condition& condition, const Schema& variables,
    SatAlgorithm algorithm = SatAlgorithm::kFloydWarshall);

namespace internal {

/// Assigns graph node ids to the variables of `conjunction` (node 0 is the
/// zero node) and populates `graph_nodes` with `name → id`.
size_t NumberVariables(const Conjunction& conjunction,
                       std::unordered_map<std::string, size_t>* graph_nodes);

}  // namespace internal
}  // namespace mview

#endif  // MVIEW_PREDICATE_SATISFIABILITY_H_
