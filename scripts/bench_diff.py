#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Every bench binary writes its summary rows with `--json <path>` (see
bench/bench_util.h); the committed BENCH_E*.json files in the repo root
are the recorded experiment results.  This script re-runs the comparison
side of that loop: it pairs the fresh rows with the baseline rows by
position and flags metric fields that regressed past a relative
threshold.

Field classification (by name, documented here because the JSON carries
no units):

* metric fields — timings (`*_ms`, `*_us`, `*_ns`, `*_seconds`, `*_s`),
  sizes (`*_bytes`), and ratios (`*_x`, `speedup*`, `*throughput*`,
  `*_per_sec`).  Compared with the relative threshold; direction-aware
  (time/bytes regress upward, speedups/throughput regress downward).
* config fields — everything else (`rows`, `partitions`, `workers`,
  `cores`, ...).  Must match the baseline exactly; a mismatch means the
  workload changed and the comparison is meaningless, which is reported
  as an error rather than a regression.

The default threshold is deliberately generous (50%) — bench numbers on
shared CI hosts are noisy, and the goal is catching order-of-magnitude
slips (a dropped cache, an accidental O(n^2)), not 5% drift.

Usage:
  bench_diff.py BASELINE.json FRESH.json [--threshold 0.5]
  bench_diff.py --run BENCH_BINARY BASELINE.json [--threshold 0.5]

The --run form executes `BENCH_BINARY --json <tmpfile>` first and then
compares; it is what the opt-in ctest wiring (MVIEW_BENCH_DIFF) uses.
Exit status: 0 clean, 1 regression(s), 2 usage/row-shape errors.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

LOWER_IS_BETTER = ("_ms", "_us", "_ns", "_seconds", "_s", "_sec", "_bytes")
HIGHER_IS_BETTER_HINTS = ("speedup", "throughput", "_per_sec", "reduction")


def classify(name):
    """Returns 'lower', 'higher', or 'config' for a field name."""
    lowered = name.lower()
    if any(hint in lowered for hint in HIGHER_IS_BETTER_HINTS):
        return "higher"
    if lowered.endswith("_x"):
        return "higher"
    if lowered.endswith(LOWER_IS_BETTER):
        return "lower"
    return "config"


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        raise ValueError(f"{path}: expected a JSON array of objects")
    return rows


def compare(baseline_rows, fresh_rows, threshold):
    """Returns (errors, regressions) as lists of message strings."""
    errors = []
    regressions = []
    if len(baseline_rows) != len(fresh_rows):
        errors.append(
            f"row count differs: baseline {len(baseline_rows)}, "
            f"fresh {len(fresh_rows)}"
        )
        return errors, regressions
    for i, (base, fresh) in enumerate(zip(baseline_rows, fresh_rows)):
        for field in sorted(set(base) & set(fresh)):
            b, f = base[field], fresh[field]
            if not isinstance(b, (int, float)) or not isinstance(f, (int, float)):
                continue
            kind = classify(field)
            if kind == "config":
                if not math.isclose(b, f, rel_tol=1e-9, abs_tol=1e-9):
                    errors.append(
                        f"row {i}: config field '{field}' changed "
                        f"({b:g} -> {f:g}); workloads are not comparable"
                    )
                continue
            if b <= 0 or f <= 0:
                continue  # degenerate measurement; nothing to compare
            ratio = f / b if kind == "lower" else b / f
            if ratio > 1.0 + threshold:
                direction = "slower" if kind == "lower" else "lower"
                regressions.append(
                    f"row {i}: '{field}' {b:g} -> {f:g} "
                    f"({ratio:.2f}x {direction}, threshold {1.0 + threshold:.2f}x)"
                )
    return errors, regressions


def main():
    parser = argparse.ArgumentParser(
        description="Diff bench JSON against a committed baseline."
    )
    parser.add_argument(
        "--run",
        metavar="BINARY",
        help="run BINARY with --json to a temp file and diff that output",
    )
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument(
        "fresh", nargs="?", help="fresh bench JSON (omit with --run)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="relative regression threshold (default 0.5 = 50%%)",
    )
    args = parser.parse_args()
    if (args.fresh is None) == (args.run is None):
        parser.error("pass exactly one of FRESH or --run BINARY")

    try:
        if args.run:
            fd, fresh_path = tempfile.mkstemp(suffix=".json", prefix="bench_")
            os.close(fd)
            try:
                subprocess.run([args.run, "--json", fresh_path], check=True)
                fresh_rows = load_rows(fresh_path)
            finally:
                os.unlink(fresh_path)
        else:
            fresh_rows = load_rows(args.fresh)
        baseline_rows = load_rows(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError,
            subprocess.CalledProcessError) as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    errors, regressions = compare(baseline_rows, fresh_rows, args.threshold)
    for message in errors:
        print(f"ERROR: {message}")
    for message in regressions:
        print(f"REGRESSION: {message}")
    if errors:
        return 2
    if regressions:
        print(f"{len(regressions)} regression(s) vs {args.baseline}")
        return 1
    print(
        f"OK: {len(baseline_rows)} row(s) within "
        f"{args.threshold:.0%} of {args.baseline}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
